"""Metric exporters: Prometheus text exposition, JSON dump, timelines.

Library use::

    from repro.obs.export import to_prometheus, to_json
    print(to_prometheus(db.metrics))

Histograms export both the standard ``_bucket``/``_sum``/``_count``
series and a companion ``<name>_summary`` gauge family carrying p50 /
p95 / p99 estimates (``{quantile="0.5"}`` ...), so dashboards get
latency percentiles without server-side ``histogram_quantile``.

CLI (runs a tiny built-in workload, then exports its session metrics)::

    python -m repro.obs.export                    # Prometheus text
    python -m repro.obs.export --format json      # JSON dump
    python -m repro.obs.export --chrome-trace t.json  # Perfetto timeline
    python -m repro.obs.export --check            # observability smoke

``--check`` is the ``make obs-smoke`` entry point: it drives the
workload, validates the Prometheus exposition (every line parses, one
TYPE per family, no duplicate series), round-trips a Chrome-trace
export through ``json.loads`` plus a schema check, and forces a query
timeout to verify the flight recorder dumps a loadable bundle — exit 0
on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys

from .metrics import MetricsRegistry, format_series

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABELS = r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\}"
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})({_LABELS})?\s+(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
)
_TYPE_RE = re.compile(
    rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram)$"
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _bucket_label(upper: float) -> str:
    return "+Inf" if upper == math.inf else _format_value(upper)


#: Percentiles exported as the ``<name>_summary`` companion family.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Each histogram family additionally exports a ``<name>_summary``
    gauge family with interpolated p50/p95/p99 estimates per series —
    a separate family (not extra samples of the histogram) so the
    exposition stays valid under the one-TYPE-per-family rule."""
    lines: list[str] = []
    for name, kind, children in registry.families():
        lines.append(f"# TYPE {name} {kind}")
        summary_lines: list[str] = []
        for key, metric in sorted(children.items()):
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{format_series(name, key)} "
                    f"{_format_value(metric.value)}"
                )
                continue
            cumulative = metric.cumulative()
            uppers = list(metric.buckets) + [math.inf]
            for upper, count in zip(uppers, cumulative):
                bucket_key = key + (("le", _bucket_label(upper)),)
                bucket_key = tuple(sorted(bucket_key))
                lines.append(
                    f"{format_series(name + '_bucket', bucket_key)} "
                    f"{count}"
                )
            lines.append(
                f"{format_series(name + '_sum', key)} "
                f"{_format_value(metric.sum)}"
            )
            lines.append(
                f"{format_series(name + '_count', key)} {metric.count}"
            )
            for q in SUMMARY_QUANTILES:
                value = metric.quantile(q)
                if value is None:
                    continue
                q_key = key + (("quantile", _format_value(q)),)
                q_key = tuple(sorted(q_key))
                summary_lines.append(
                    f"{format_series(name + '_summary', q_key)} "
                    f"{_format_value(value)}"
                )
        if summary_lines:
            lines.append(f"# TYPE {name}_summary gauge")
            lines.extend(summary_lines)
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def validate_exposition(text: str) -> list[str]:
    """Check a Prometheus text exposition: every line must be a comment,
    a ``# TYPE`` declaration, or a well-formed sample; each family gets
    exactly one TYPE line, declared before its samples; no series may
    repeat. Returns a list of problems (empty = valid)."""
    problems: list[str] = []
    declared: dict[str, str] = {}
    seen_series: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = _TYPE_RE.match(line)
            if match is None:
                if line.startswith("# TYPE"):
                    problems.append(
                        f"line {lineno}: malformed TYPE line: {line!r}"
                    )
                continue  # other comments (HELP etc.) are fine
            name, kind = match.group(1), match.group(2)
            if name in declared:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {name!r}"
                )
            declared[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = match.group(1)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                family = name[: -len(suffix)]
                break
        if family not in declared:
            problems.append(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        series = line.rsplit(" ", 1)[0]
        if series in seen_series:
            problems.append(
                f"line {lineno}: duplicate series {series!r}"
            )
        seen_series.add(series)
    return problems


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_tiny_workload():
    """A minimal session exercising every instrumented layer: DDL, DML,
    a join, ITERATE, k-Means, PageRank, a rollback, and a vacuum.
    Returns the session so callers can export ``db.metrics``."""
    from ..api.database import Database

    db = Database()
    db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
    db.insert_rows(
        "pts",
        [(0.0, 0.0), (0.1, 0.2), (1.0, 1.1), (9.0, 9.1), (8.8, 9.3)],
    )
    db.execute("CREATE TABLE edges (src INTEGER, dest INTEGER)")
    db.insert_rows("edges", [(1, 2), (2, 3), (3, 1), (3, 4), (4, 1)])
    db.execute("SELECT count(*) FROM pts p, edges e WHERE e.src > p.x")
    db.execute(
        "SELECT * FROM ITERATE((SELECT 1 AS n),"
        " (SELECT n + 1 FROM iterate),"
        " (SELECT n FROM iterate WHERE n >= 4))"
    )
    db.execute(
        "SELECT * FROM KMEANS((SELECT x, y FROM pts),"
        " (SELECT x, y FROM pts LIMIT 2), 5)"
    )
    db.execute(
        "SELECT * FROM PAGERANK((SELECT src, dest FROM edges),"
        " 0.85, 0.000001, 20)"
    )
    db.execute("UPDATE pts SET x = x + 1 WHERE x < 1")
    db.execute("DELETE FROM edges WHERE src = 4")
    try:
        db.execute("SELECT * FROM no_such_table")
    except Exception:
        pass  # an error statement, so error counters are non-zero
    db.begin()
    db.execute("INSERT INTO pts VALUES (2.0, 2.0)")
    db.rollback()
    db.vacuum()
    return db


def _check_chrome_trace(db) -> list[str]:
    """Round-trip a Chrome-trace export of the workload's spans through
    ``json.loads`` plus the schema check."""
    from .timeline import export_chrome_trace, validate_chrome_trace

    text = export_chrome_trace(db.tracer)
    try:
        document = json.loads(text)
    except ValueError as exc:
        return [f"chrome trace is not valid JSON: {exc}"]
    problems = validate_chrome_trace(document)
    events = document.get("traceEvents", [])
    if not any(
        e.get("ph") == "X" and e.get("name") == "statement"
        for e in events
    ):
        problems.append("chrome trace has no statement span events")
    return problems


def _check_flight_recorder() -> list[str]:
    """Force a query timeout in a throwaway session and verify the
    flight recorder dumped a loadable bundle for it."""
    import os
    import tempfile

    from ..api.database import Database
    from ..errors import QueryTimeout
    from .flight import load_bundle

    with tempfile.TemporaryDirectory() as tmp:
        db = Database(timeout_ms=0.01, flight_dir=tmp)
        timed_out = False
        try:
            db.execute(
                "SELECT * FROM ITERATE((SELECT 1 AS n),"
                " (SELECT n + 1 FROM iterate),"
                " (SELECT n FROM iterate WHERE n >= 1000000))"
            )
        except QueryTimeout:
            timed_out = True
        if not timed_out:
            return ["forced timeout did not raise QueryTimeout"]
        bundles = [
            os.path.join(tmp, name)
            for name in os.listdir(tmp)
            if name.endswith(".json")
        ]
        if not bundles:
            return ["forced timeout produced no flight-recorder bundle"]
        try:
            bundle = load_bundle(bundles[-1])
        except (OSError, ValueError) as exc:
            return [f"flight-recorder bundle not loadable: {exc}"]
        if bundle.get("reason") != "timeout":
            return [
                f"bundle reason is {bundle.get('reason')!r}, "
                "expected 'timeout'"
            ]
        if not (bundle.get("governor") or {}).get("verdict") == "timeout":
            return ["bundle governor verdict is not 'timeout'"]
        if not db.history() or db.history()[-1].verdict != "timeout":
            return ["history did not record the timed-out statement"]
    return []


def run_check() -> int:
    """The ``make obs-smoke`` battery: Prometheus exposition, Chrome
    trace round trip, history store, flight recorder."""
    db = run_tiny_workload()
    text = to_prometheus(db.metrics)
    problems = validate_exposition(text)
    if not any("_summary" in line for line in text.splitlines()):
        problems.append("exposition has no quantile summary series")
    problems.extend(_check_chrome_trace(db))
    if not db.history():
        problems.append("history store recorded no statements")
    problems.extend(_check_flight_recorder())
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(
            f"FAIL: {len(problems)} problem(s)", file=sys.stderr
        )
        return 1
    n_series = sum(
        1 for line in text.splitlines()
        if line and not line.startswith("#")
    )
    print(
        f"observability smoke OK: {n_series} series, "
        f"{len(db.query_log(100))} statements traced, "
        f"{len(db.history(100))} history records, "
        "chrome trace + flight bundle round-trip clean"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description=(
            "Run a tiny workload and export its engine metrics."
        ),
    )
    parser.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="output format (default: prometheus)",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help=(
            "write the workload's span trees as a Chrome-trace / "
            "Perfetto JSON timeline to PATH ('-' for stdout) instead "
            "of exporting metrics"
        ),
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "run the observability smoke battery (exposition parse, "
            "chrome-trace round trip, history store, flight-recorder "
            "bundle from a forced timeout); exit 1 on problems"
        ),
    )
    args = parser.parse_args(argv)

    if args.check:
        return run_check()
    db = run_tiny_workload()
    if args.chrome_trace is not None:
        from .timeline import export_chrome_trace

        path = (
            None if args.chrome_trace == "-" else args.chrome_trace
        )
        text = export_chrome_trace(db.tracer, path)
        if path is None:
            sys.stdout.write(text)
        else:
            events = len(json.loads(text).get("traceEvents", []))
            print(f"wrote {events} trace events to {path}")
        return 0
    if args.format == "json":
        print(to_json(db.metrics))
    else:
        sys.stdout.write(to_prometheus(db.metrics))
    return 0


if __name__ == "__main__":
    sys.exit(main())
