"""Metric exporters: Prometheus text exposition and JSON dump.

Library use::

    from repro.obs.export import to_prometheus, to_json
    print(to_prometheus(db.metrics))

CLI (runs a tiny built-in workload, then exports its session metrics)::

    python -m repro.obs.export                    # Prometheus text
    python -m repro.obs.export --format json      # JSON dump
    python -m repro.obs.export --check            # validate exposition

``--check`` is the ``make metrics-smoke`` entry point: it drives the
workload, renders the exposition, and verifies every line parses with
no duplicate series — exit 0 on success, 1 on a malformed exposition.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys

from .metrics import MetricsRegistry, format_series

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABELS = r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\}"
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})({_LABELS})?\s+(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
)
_TYPE_RE = re.compile(
    rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram)$"
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _bucket_label(upper: float) -> str:
    return "+Inf" if upper == math.inf else _format_value(upper)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, children in registry.families():
        lines.append(f"# TYPE {name} {kind}")
        for key, metric in sorted(children.items()):
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{format_series(name, key)} "
                    f"{_format_value(metric.value)}"
                )
                continue
            cumulative = metric.cumulative()
            uppers = list(metric.buckets) + [math.inf]
            for upper, count in zip(uppers, cumulative):
                bucket_key = key + (("le", _bucket_label(upper)),)
                bucket_key = tuple(sorted(bucket_key))
                lines.append(
                    f"{format_series(name + '_bucket', bucket_key)} "
                    f"{count}"
                )
            lines.append(
                f"{format_series(name + '_sum', key)} "
                f"{_format_value(metric.sum)}"
            )
            lines.append(
                f"{format_series(name + '_count', key)} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def validate_exposition(text: str) -> list[str]:
    """Check a Prometheus text exposition: every line must be a comment,
    a ``# TYPE`` declaration, or a well-formed sample; each family gets
    exactly one TYPE line, declared before its samples; no series may
    repeat. Returns a list of problems (empty = valid)."""
    problems: list[str] = []
    declared: dict[str, str] = {}
    seen_series: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = _TYPE_RE.match(line)
            if match is None:
                if line.startswith("# TYPE"):
                    problems.append(
                        f"line {lineno}: malformed TYPE line: {line!r}"
                    )
                continue  # other comments (HELP etc.) are fine
            name, kind = match.group(1), match.group(2)
            if name in declared:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {name!r}"
                )
            declared[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = match.group(1)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                family = name[: -len(suffix)]
                break
        if family not in declared:
            problems.append(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        series = line.rsplit(" ", 1)[0]
        if series in seen_series:
            problems.append(
                f"line {lineno}: duplicate series {series!r}"
            )
        seen_series.add(series)
    return problems


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_tiny_workload():
    """A minimal session exercising every instrumented layer: DDL, DML,
    a join, ITERATE, k-Means, PageRank, a rollback, and a vacuum.
    Returns the session so callers can export ``db.metrics``."""
    from ..api.database import Database

    db = Database()
    db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
    db.insert_rows(
        "pts",
        [(0.0, 0.0), (0.1, 0.2), (1.0, 1.1), (9.0, 9.1), (8.8, 9.3)],
    )
    db.execute("CREATE TABLE edges (src INTEGER, dest INTEGER)")
    db.insert_rows("edges", [(1, 2), (2, 3), (3, 1), (3, 4), (4, 1)])
    db.execute("SELECT count(*) FROM pts p, edges e WHERE e.src > p.x")
    db.execute(
        "SELECT * FROM ITERATE((SELECT 1 AS n),"
        " (SELECT n + 1 FROM iterate),"
        " (SELECT n FROM iterate WHERE n >= 4))"
    )
    db.execute(
        "SELECT * FROM KMEANS((SELECT x, y FROM pts),"
        " (SELECT x, y FROM pts LIMIT 2), 5)"
    )
    db.execute(
        "SELECT * FROM PAGERANK((SELECT src, dest FROM edges),"
        " 0.85, 0.000001, 20)"
    )
    db.execute("UPDATE pts SET x = x + 1 WHERE x < 1")
    db.execute("DELETE FROM edges WHERE src = 4")
    try:
        db.execute("SELECT * FROM no_such_table")
    except Exception:
        pass  # an error statement, so error counters are non-zero
    db.begin()
    db.execute("INSERT INTO pts VALUES (2.0, 2.0)")
    db.rollback()
    db.vacuum()
    return db


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description=(
            "Run a tiny workload and export its engine metrics."
        ),
    )
    parser.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="output format (default: prometheus)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "validate that the Prometheus exposition parses (line "
            "format, one TYPE per family, no duplicate series); exit "
            "1 on problems instead of printing the exposition"
        ),
    )
    args = parser.parse_args(argv)

    db = run_tiny_workload()
    if args.check:
        text = to_prometheus(db.metrics)
        problems = validate_exposition(text)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print(
                f"FAIL: {len(problems)} problem(s) in "
                f"{len(text.splitlines())} exposition lines",
                file=sys.stderr,
            )
            return 1
        n_series = sum(
            1 for line in text.splitlines()
            if line and not line.startswith("#")
        )
        print(
            f"metrics exposition OK: {n_series} series, "
            f"{len(db.query_log(100))} statements traced"
        )
        return 0
    if args.format == "json":
        print(to_json(db.metrics))
    else:
        sys.stdout.write(to_prometheus(db.metrics))
    return 0


if __name__ == "__main__":
    sys.exit(main())
