"""Engine-wide observability: metrics, query tracing, exporters.

``repro.obs`` is the instrumentation trunk the engine's layers hang
measurements on:

* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` behind
  ``Database.metrics`` (counters, gauges, fixed-bucket histograms),
  mirrored into a process-wide :func:`global_registry`;
* :mod:`repro.obs.trace` — per-statement span trees
  (``Database.last_trace()``) and the statement ring buffer
  (``Database.query_log(n)``);
* :mod:`repro.obs.export` — Prometheus text exposition and JSON dump,
  runnable as ``python -m repro.obs.export``.

See ``docs/observability.md`` for metric names and the span model.
"""

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from .trace import QueryLogEntry, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "global_registry",
    "QueryLogEntry",
    "Span",
    "Tracer",
]
