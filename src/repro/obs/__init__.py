"""Engine-wide observability: metrics, tracing, history, post-mortems.

``repro.obs`` is the instrumentation trunk the engine's layers hang
measurements on:

* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` behind
  ``Database.metrics`` (counters, gauges, fixed-bucket histograms with
  interpolated quantiles), mirrored into a process-wide
  :func:`global_registry`;
* :mod:`repro.obs.trace` — per-statement span trees
  (``Database.last_trace()``), the statement ring buffer
  (``Database.query_log(n)``), and cross-thread span attachment for
  worker-pool trace propagation;
* :mod:`repro.obs.history` — the always-on query history store
  (``Database.history``): per-statement records with estimated vs
  observed per-operator cardinalities, the per-fingerprint
  plan-feedback index, and the slow-query log;
* :mod:`repro.obs.flight` — the flight recorder (``Database.flight``):
  self-contained diagnostic bundles dumped when statements die, with
  ``python -m repro.obs.dump`` to render them;
* :mod:`repro.obs.timeline` — Chrome-trace / Perfetto export of span
  trees (``python -m repro.obs.export --chrome-trace``);
* :mod:`repro.obs.export` — Prometheus text exposition (with
  p50/p95/p99 summary series), JSON dump, and the ``make obs-smoke``
  battery, runnable as ``python -m repro.obs.export``.

See ``docs/observability.md`` for metric names and the span model.
"""

from .flight import FlightRecorder, load_bundle
from .history import QueryHistory, QueryRecord, load_jsonl
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from .timeline import export_chrome_trace, spans_to_chrome_trace
from .trace import QueryLogEntry, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "global_registry",
    "QueryLogEntry",
    "Span",
    "Tracer",
    "QueryHistory",
    "QueryRecord",
    "load_jsonl",
    "FlightRecorder",
    "load_bundle",
    "export_chrome_trace",
    "spans_to_chrome_trace",
]
