"""Exception hierarchy for the repro database engine.

Every error raised by the engine derives from :class:`ReproError`, so
applications can catch a single base class. The sub-hierarchy mirrors the
query lifecycle: lexing/parsing -> binding -> planning -> execution, plus
storage/transaction errors raised by the substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class ParseError(ReproError):
    """Raised by the lexer or parser for malformed SQL.

    Carries the source position to make error messages actionable.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class BindError(ReproError):
    """Raised during semantic analysis: unknown names, type mismatches,
    ambiguous references, arity errors, malformed lambdas."""


class PlanError(ReproError):
    """Raised when a bound query cannot be turned into an executable plan."""


class ExecutionError(ReproError):
    """Raised while executing a physical plan (overflow, division,
    cast failures, operator contract violations)."""


class IterationLimitError(ExecutionError):
    """Raised when ITERATE or WITH RECURSIVE exceeds the configured
    maximum number of iterations (infinite-loop guard, paper section 5.1)."""


class CatalogError(ReproError):
    """Raised for catalog violations: duplicate table, unknown table,
    schema mismatch on insert, dropping a missing object."""


class TransactionError(ReproError):
    """Raised for transaction protocol violations and serialization
    conflicts (first-committer-wins aborts)."""


class SerializationConflict(TransactionError):
    """A concurrent committed transaction wrote a table this transaction
    also wrote; the later committer must abort (snapshot isolation)."""


class UDFError(ReproError):
    """Raised when a user-defined function misbehaves: wrong arity,
    unregistered name, or an exception escaping the UDF body."""


class AnalyticsError(ExecutionError):
    """Raised by analytics operators for invalid parameters, e.g. k < 1,
    non-numeric inputs, empty training sets, or mismatched center arity."""
