"""Exception hierarchy for the repro database engine.

Every error raised by the engine derives from :class:`ReproError`, so
applications can catch a single base class. The sub-hierarchy mirrors the
query lifecycle: lexing/parsing -> binding -> planning -> execution, plus
storage/transaction errors raised by the substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class ParseError(ReproError):
    """Raised by the lexer or parser for malformed SQL.

    Carries the source position to make error messages actionable.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class BindError(ReproError):
    """Raised during semantic analysis: unknown names, type mismatches,
    ambiguous references, arity errors, malformed lambdas."""


class PlanError(ReproError):
    """Raised when a bound query cannot be turned into an executable plan."""


class ExecutionError(ReproError):
    """Raised while executing a physical plan (overflow, division,
    cast failures, operator contract violations)."""


class IterationLimitError(ExecutionError):
    """Raised when ITERATE or WITH RECURSIVE exceeds the configured
    maximum number of iterations (infinite-loop guard, paper section 5.1)."""


class ResourceGovernorError(ExecutionError):
    """Base of the resource-governor error family (docs/robustness.md).

    The engine guarantees *statement atomicity* for these: the statement
    that exceeded its budget is rolled back (or, inside an explicit
    transaction, unwound to the statement's savepoint) and the session
    stays fully usable. ``report`` carries the governor's final state —
    verdict, checkpoints passed, elapsed time, peak accounted bytes."""

    def __init__(self, message: str, report: dict | None = None):
        super().__init__(message)
        self.report: dict = report or {}


class QueryCancelled(ResourceGovernorError):
    """The statement was cancelled cooperatively (``Database.cancel()``
    from another thread, or a chaos-injected cancel). Raised at the next
    morsel or iteration-round checkpoint."""


class QueryTimeout(ResourceGovernorError):
    """The statement exceeded its deadline (``timeout_ms``). Raised at
    the next morsel or iteration-round checkpoint."""


class MemoryBudgetExceeded(ResourceGovernorError):
    """The statement's accounted operator memory (numpy array bytes of
    materialised state) exceeded its budget (``memory_budget_mb``), or a
    chaos-injected allocation failure fired."""


class InjectedFault(ExecutionError):
    """A deterministic fault injected by the chaos harness
    (:mod:`repro.testing.chaos`) at an operator checkpoint. Typed so the
    chaos oracle can assert that injected failures surface as ordinary
    engine errors, never as partial state."""


class WorkerCrashError(ExecutionError):
    """A morsel task died on a worker thread (infrastructure failure,
    not a query error). The worker pool retries such morsels serially on
    the coordinator thread before failing the query."""

    #: Consulted by :meth:`repro.exec.parallel.WorkerPool.map_ordered`.
    retry_serial = True


class AdmissionRejected(ReproError):
    """The server's bounded admission queue was full: the request was
    rejected *before* any work happened (backpressure, never blocking).
    Surfaces over the wire as an ``ADMISSION_REJECTED`` error frame;
    clients should back off and retry (docs/server.md)."""


class ProtocolError(ReproError):
    """A wire-protocol violation on the server connection: malformed or
    oversized frame, unknown operation, or a message sent out of order
    (e.g. ``query`` before ``connect``). See docs/server.md."""


class CatalogError(ReproError):
    """Raised for catalog violations: duplicate table, unknown table,
    schema mismatch on insert, dropping a missing object."""


class TransactionError(ReproError):
    """Raised for transaction protocol violations and serialization
    conflicts (first-committer-wins aborts)."""


class SerializationConflict(TransactionError):
    """A concurrent committed transaction wrote a table this transaction
    also wrote; the later committer must abort (snapshot isolation)."""


class WalCorruptionError(TransactionError):
    """The write-ahead log (or a checkpoint snapshot) holds a *complete*
    but invalid record — CRC mismatch, undecodable payload, or a broken
    sequence chain. Unlike a torn tail (a normal crash signature that is
    silently truncated), this means bit rot or an external overwrite.
    Raised during recovery in ``recovery='strict'`` mode; in
    ``'tolerant'`` mode the corrupt suffix is discarded and counted
    instead (docs/durability.md). ``info`` carries the scan telemetry
    (offset, records/bytes discarded)."""

    def __init__(self, message: str, info: dict | None = None):
        super().__init__(message)
        self.info = info or {}


class UDFError(ReproError):
    """Raised when a user-defined function misbehaves: wrong arity,
    unregistered name, or an exception escaping the UDF body."""


class AnalyticsError(ExecutionError):
    """Raised by analytics operators for invalid parameters, e.g. k < 1,
    non-numeric inputs, empty training sets, or mismatched center arity."""
