"""Layer 1: the DBMS as pure data storage for an external tool.

The currently most common architecture (Figure 1, layer 1): the database
only stores the data; analytics happen in a separate process. The costs
the paper attributes to it are the ETL cycle — every analysis first
exports the working set out of the database (row serialisation, the
"time- and resource-consuming process" of section 1), converts it to the
tool's format, computes, and ships results back.

This simulator performs those steps literally against a
:class:`repro.Database`: a SQL export materialised to Python rows (the
wire format), rows serialised/deserialised with pickle (the transfer),
conversion to the tool's numpy format, a fast kernel (the external tool
itself is efficient), and an INSERT of the results.
"""

from __future__ import annotations

import pickle

import numpy as np

from ..analytics.kmeans import kmeans as kernel_kmeans
from ..analytics.naive_bayes import naive_bayes_train as kernel_nb_train
from ..analytics.pagerank import pagerank as kernel_pagerank


class ExternalToolClient:
    """Simulates a stand-alone analytics tool talking to the database."""

    def __init__(self, db):
        self.db = db
        #: Bytes moved over the simulated wire (export + import).
        self.bytes_transferred = 0

    # -- the ETL cycle -----------------------------------------------------------

    def _export(self, sql: str) -> list[tuple]:
        """Run a query and ship its rows out of the database."""
        result = self.db.execute(sql)
        wire = pickle.dumps(result.rows)
        self.bytes_transferred += len(wire)
        return pickle.loads(wire)

    def _import(self, table: str, rows: list[tuple]) -> None:
        """Ship result rows back into the database."""
        wire = pickle.dumps(rows)
        self.bytes_transferred += len(wire)
        self.db.insert_rows(table, pickle.loads(wire))

    # -- analyses -----------------------------------------------------------------

    def kmeans(
        self,
        data_sql: str,
        centers_sql: str,
        iterations: int,
        result_table: str | None = None,
    ) -> np.ndarray:
        """Export data + centers, cluster externally, optionally import
        the centers back. Returns the final centers."""
        data_rows = self._export(data_sql)
        center_rows = self._export(centers_sql)
        points = np.asarray(data_rows, dtype=np.float64)
        centers = np.asarray(center_rows, dtype=np.float64)
        final, _assign, _sizes, _iters = kernel_kmeans(
            points, centers, max_iterations=iterations
        )
        if result_table is not None:
            self._import(
                result_table,
                [tuple(float(x) for x in row) for row in final],
            )
        return final

    def pagerank(
        self,
        edges_sql: str,
        damping: float,
        iterations: int,
        result_table: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        rows = self._export(edges_sql)
        edges = np.asarray(rows, dtype=np.int64)
        vertex_ids, ranks, _iters = kernel_pagerank(
            edges[:, 0], edges[:, 1], damping=damping,
            epsilon=0.0, max_iterations=iterations,
        )
        if result_table is not None:
            self._import(
                result_table,
                [
                    (int(v), float(r))
                    for v, r in zip(vertex_ids, ranks)
                ],
            )
        return vertex_ids, ranks

    def naive_bayes_train(self, train_sql: str):
        """Export labelled rows (label first), train externally."""
        rows = self._export(train_sql)
        labels = np.asarray([row[0] for row in rows], dtype=object)
        matrix = np.asarray(
            [row[1:] for row in rows], dtype=np.float64
        )
        return kernel_nb_train(labels, matrix)
