"""Competitor-system simulators for the evaluation (paper section 8.2).

The paper benchmarks against closed testbeds we cannot run (Apache Spark
MLlib, MATLAB R2015, MADlib on Greenplum). Each simulator reproduces the
*cost structure* the paper attributes to that system — the mechanisms
that make it fast or slow relative to in-core operators — rather than
its absolute speed:

* :mod:`matlab_like` — single-threaded interpreted per-row loops
  ("MATLAB does not contain parallel versions of the chosen algorithms",
  section 8.3); no vectorisation at all.
* :mod:`spark_like` — partitioned RDD-style execution: per-stage task
  scheduling with real closure serialisation (pickle) per task and a
  collect+merge step per iteration; the per-partition kernels are fast
  (numpy), as Spark's compiled closures are.
* :mod:`madlib_like` — layer-2 database extension: drives the algorithm
  from outside the engine as a sequence of SQL statements over
  intermediate tables, with the per-tuple core executed in a black-box
  scalar UDF the engine cannot vectorise or inspect (section 4.1).
* :mod:`external` — layer 1: the DBMS used purely as storage; data is
  exported row-by-row to the "external tool" (paying serialisation/
  transfer), computed on with fast kernels, and results written back.
"""

from .external import ExternalToolClient
from .matlab_like import (
    matlab_like_kmeans,
    matlab_like_naive_bayes_train,
    matlab_like_pagerank,
)
from .spark_like import SparkLikeContext
from .madlib_like import (
    madlib_like_kmeans,
    madlib_like_naive_bayes_train,
    madlib_like_pagerank,
)

__all__ = [
    "ExternalToolClient",
    "matlab_like_kmeans",
    "matlab_like_pagerank",
    "matlab_like_naive_bayes_train",
    "SparkLikeContext",
    "madlib_like_kmeans",
    "madlib_like_pagerank",
    "madlib_like_naive_bayes_train",
]
