"""Spark-MLlib-style baseline: partitioned execution with task dispatch.

Apache Spark is the paper's fastest contender: its kernels run compiled
and parallel, but every stage pays driver-side scheduling — the closure
(and broadcast state, e.g. the current k-Means centers) is serialised
per task, shipped to executors, and per-partition results are collected
and merged on the driver. Those are the overheads that make it "multiple
times slower than the HyPer Operator approach" (section 8.4.3) despite
fast inner loops.

This simulator keeps the inner loops fast (numpy over partitions, like
Spark's compiled closures) and pays the real architectural costs:
``pickle.dumps``/``loads`` of the closure + broadcast per task, a
per-task dispatch through the "scheduler", and a driver-side merge per
stage. No artificial sleeps — every cost is real work the architecture
mandates.
"""

from __future__ import annotations

import pickle
from typing import Callable, Sequence

import numpy as np

from ..errors import AnalyticsError

DEFAULT_PARTITIONS = 32


class SparkLikeContext:
    """A miniature RDD runtime: partitioned arrays + stage execution.

    With ``serialized_cache`` (the default, mirroring Spark's
    ``MEMORY_ONLY_SER`` storage and its shuffle files — the realistic
    configuration for datasets near memory capacity) partitions are held
    as serialised blocks and every task pays the storage-format boundary:
    deserialise the block, compute, serialise the result back to the
    driver. Disable it to model a fully deserialised cache.
    """

    def __init__(
        self,
        n_partitions: int = DEFAULT_PARTITIONS,
        serialized_cache: bool = True,
    ):
        if n_partitions < 1:
            raise AnalyticsError("need at least one partition")
        self.n_partitions = n_partitions
        self.serialized_cache = serialized_cache
        #: Counters for tests/inspection.
        self.tasks_run = 0
        self.bytes_shipped = 0

    # -- RDD mechanics -------------------------------------------------------

    def parallelize(self, array: np.ndarray) -> list[object]:
        """Split a numpy array into partitions (rows on axis 0); cached
        in block-manager (serialised) form by default."""
        parts = np.array_split(array, self.n_partitions)
        if self.serialized_cache:
            return [pickle.dumps(p) for p in parts]
        return parts

    def run_stage(
        self,
        partitions: Sequence[object],
        task: Callable[[np.ndarray, object], object],
        broadcast: object = None,
    ) -> list[object]:
        """One stage: per task, serialise the closure + broadcast value
        (as the Spark driver does), deserialise "on the executor", read
        the partition out of the block store, run, and ship the result
        back to the driver."""
        results = []
        for partition in partitions:
            payload = pickle.dumps((task, broadcast))
            self.bytes_shipped += len(payload)
            shipped_task, shipped_broadcast = pickle.loads(payload)
            if self.serialized_cache:
                block = pickle.loads(partition)
            else:
                block = partition
            outcome = shipped_task(block, shipped_broadcast)
            wire = pickle.dumps(outcome)
            self.bytes_shipped += len(wire)
            results.append(pickle.loads(wire))
            self.tasks_run += 1
        return results

    # -- algorithms ---------------------------------------------------------------

    def kmeans(
        self,
        points: np.ndarray,
        initial_centers: np.ndarray,
        iterations: int,
    ) -> np.ndarray:
        """Lloyd's algorithm, one scheduler round per iteration, centers
        broadcast to every task, partial sums merged on the driver.

        (The MLlib norm-based distance-pruning optimisations are
        disabled in the paper for comparability — section 8.2 — so this
        runs plain Lloyd.)"""
        points = np.asarray(points, dtype=np.float64)
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
        if centers.ndim != 2 or points.ndim != 2:
            raise AnalyticsError("kmeans expects 2-D arrays")
        partitions = self.parallelize(points)
        k = centers.shape[0]
        d = centers.shape[1]
        for _round in range(iterations):
            partials = self.run_stage(
                partitions, _kmeans_partition_task, centers
            )
            sums = np.zeros((k, d))
            counts = np.zeros(k, dtype=np.int64)
            for part_sums, part_counts in partials:
                sums += part_sums
                counts += part_counts
            non_empty = counts > 0
            centers[non_empty] = sums[non_empty] / counts[non_empty, None]
        return centers

    def pagerank(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        damping: float,
        iterations: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Edge-partitioned PageRank: per iteration one stage computes
        per-partition contribution vectors which the driver merges.

        Returns (vertex_ids, ranks)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        vertex_ids, dense = np.unique(
            np.concatenate([src, dst]), return_inverse=True
        )
        n = len(vertex_ids)
        if n == 0:
            return vertex_ids, np.zeros(0)
        src_dense = dense[: len(src)]
        dst_dense = dense[len(src):]
        out_deg = np.bincount(src_dense, minlength=n).astype(np.float64)
        edges = np.column_stack([src_dense, dst_dense])
        partitions = self.parallelize(edges)
        ranks = np.full(n, 1.0 / n)
        base = (1.0 - damping) / n
        dangling = out_deg == 0
        safe_deg = np.where(dangling, 1.0, out_deg)
        for _round in range(iterations):
            per_source = ranks / safe_deg
            per_source[dangling] = 0.0
            partials = self.run_stage(
                partitions, _pagerank_partition_task, (per_source, n)
            )
            gathered = np.zeros(n)
            for partial in partials:
                gathered += partial
            new_ranks = base + damping * gathered
            if dangling.any():
                new_ranks += damping * ranks[dangling].sum() / n
            ranks = new_ranks
        return vertex_ids, ranks

    def naive_bayes_train(
        self, labels: np.ndarray, matrix: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One stage of per-partition (count, sum, sumsq) per class,
        merged on the driver. Returns (classes, priors, means, stds)."""
        labels = np.asarray(labels)
        matrix = np.asarray(matrix, dtype=np.float64)
        classes = np.unique(labels)
        class_index = {c: i for i, c in enumerate(classes)}
        codes = np.asarray([class_index[label] for label in labels])
        stacked = np.column_stack([codes.astype(np.float64), matrix])
        partitions = self.parallelize(stacked)
        k = len(classes)
        d = matrix.shape[1]
        partials = self.run_stage(
            partitions, _nb_partition_task, (k, d)
        )
        counts = np.zeros(k)
        sums = np.zeros((k, d))
        sumsq = np.zeros((k, d))
        for c, s, q in partials:
            counts += c
            sums += s
            sumsq += q
        n = matrix.shape[0]
        safe = np.where(counts == 0, 1.0, counts)
        means = sums / safe[:, None]
        stds = np.sqrt(
            np.clip(sumsq / safe[:, None] - means * means, 0.0, None)
        )
        priors = (counts + 1.0) / (n + k)
        return classes, priors, means, stds


# Module-level task functions (picklable, as Spark closures must be).


def _kmeans_partition_task(partition: np.ndarray, centers: np.ndarray):
    k, d = centers.shape
    if partition.shape[0] == 0:
        return np.zeros((k, d)), np.zeros(k, dtype=np.int64)
    distances = (
        (partition[:, None, :] - centers[None, :, :]) ** 2
    ).sum(axis=2)
    assignment = np.argmin(distances, axis=1)
    counts = np.bincount(assignment, minlength=k)
    sums = np.zeros((k, d))
    for j in range(d):
        sums[:, j] = np.bincount(
            assignment, weights=partition[:, j], minlength=k
        )
    return sums, counts


def _pagerank_partition_task(partition: np.ndarray, broadcast):
    per_source, n = broadcast
    gathered = np.zeros(n)
    if partition.shape[0]:
        np.add.at(
            gathered, partition[:, 1], per_source[partition[:, 0]]
        )
    return gathered


def _nb_partition_task(partition: np.ndarray, broadcast):
    k, d = broadcast
    counts = np.zeros(k)
    sums = np.zeros((k, d))
    sumsq = np.zeros((k, d))
    if partition.shape[0]:
        codes = partition[:, 0].astype(np.int64)
        features = partition[:, 1:]
        counts += np.bincount(codes, minlength=k)
        for j in range(d):
            sums[:, j] += np.bincount(
                codes, weights=features[:, j], minlength=k
            )
            sumsq[:, j] += np.bincount(
                codes, weights=features[:, j] ** 2, minlength=k
            )
    return counts, sums, sumsq
