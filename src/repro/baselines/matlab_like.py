"""MATLAB-style baseline: single-threaded interpreted loops.

The paper includes MATLAB "because multiple heavily used data analytics
tools do not support parallelism" (section 8.4.3); its built-in k-Means
runs single-threaded. This simulator reproduces that cost structure: the
whole algorithm is plain Python over Python lists — one tuple at a time,
no vectorisation, no parallel chunks. It is deliberately the slowest
series, as in the paper's figures.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import AnalyticsError


def matlab_like_kmeans(
    points: Sequence[Sequence[float]],
    initial_centers: Sequence[Sequence[float]],
    iterations: int,
) -> list[list[float]]:
    """Lloyd's algorithm, interpreted, one point at a time."""
    centers = [list(c) for c in initial_centers]
    if not centers:
        raise AnalyticsError("need at least one center")
    d = len(centers[0])
    k = len(centers)
    assignment = [-1] * len(points)
    for _round in range(iterations):
        changed = False
        sums = [[0.0] * d for _c in range(k)]
        counts = [0] * k
        for i, point in enumerate(points):
            best = -1
            best_dist = math.inf
            for c in range(k):
                center = centers[c]
                dist = 0.0
                for j in range(d):
                    diff = point[j] - center[j]
                    dist += diff * diff
                if dist < best_dist:
                    best_dist = dist
                    best = c
            if best != assignment[i]:
                changed = True
                assignment[i] = best
            counts[best] += 1
            row = sums[best]
            for j in range(d):
                row[j] += point[j]
        for c in range(k):
            if counts[c]:
                centers[c] = [value / counts[c] for value in sums[c]]
        if not changed:
            break
    return centers


def matlab_like_pagerank(
    edges: Sequence[tuple[int, int]],
    damping: float,
    iterations: int,
) -> dict[int, float]:
    """PageRank over adjacency dictionaries, interpreted per edge."""
    out_degree: dict[int, int] = {}
    incoming: dict[int, list[int]] = {}
    vertices: set[int] = set()
    for src, dst in edges:
        vertices.add(src)
        vertices.add(dst)
        out_degree[src] = out_degree.get(src, 0) + 1
        incoming.setdefault(dst, []).append(src)
    n = len(vertices)
    if n == 0:
        return {}
    ranks = {v: 1.0 / n for v in vertices}
    base = (1.0 - damping) / n
    for _round in range(iterations):
        contribution = {
            v: (ranks[v] / out_degree[v]) if out_degree.get(v) else 0.0
            for v in vertices
        }
        dangling = sum(
            ranks[v] for v in vertices if not out_degree.get(v)
        )
        new_ranks = {}
        for v in vertices:
            total = 0.0
            for u in incoming.get(v, ()):
                total += contribution[u]
            new_ranks[v] = base + damping * (total + dangling / n)
        ranks = new_ranks
    return ranks


def matlab_like_naive_bayes_train(
    labels: Sequence[object],
    rows: Sequence[Sequence[float]],
) -> dict[object, dict[str, list[float]]]:
    """Gaussian NB training, one row at a time.

    Returns {class: {"prior": [p], "mean": [...], "std": [...]}}.
    """
    if not rows:
        raise AnalyticsError("cannot train on empty data")
    d = len(rows[0])
    counts: dict[object, int] = {}
    sums: dict[object, list[float]] = {}
    sumsq: dict[object, list[float]] = {}
    for label, row in zip(labels, rows):
        if label not in counts:
            counts[label] = 0
            sums[label] = [0.0] * d
            sumsq[label] = [0.0] * d
        counts[label] += 1
        srow = sums[label]
        qrow = sumsq[label]
        for j in range(d):
            value = row[j]
            srow[j] += value
            qrow[j] += value * value
    n = len(rows)
    k = len(counts)
    model: dict[object, dict[str, list[float]]] = {}
    for label in counts:
        c = counts[label]
        means = [sums[label][j] / c for j in range(d)]
        stds = [
            math.sqrt(max(sumsq[label][j] / c - means[j] * means[j], 0.0))
            for j in range(d)
        ]
        model[label] = {
            "prior": [(c + 1.0) / (n + k)],
            "mean": means,
            "std": stds,
        }
    return model
