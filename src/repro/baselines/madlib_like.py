"""MADlib-style baseline: layer-2 UDF-driven in-database analytics.

MADlib runs analytics *on top of* a database: algorithms are library
functions that drive SQL from outside the engine, materialise
intermediate results into tables between steps, and push the per-tuple
core into user-defined functions the engine executes as black boxes —
it "executes those functions but cannot inspect or optimize them"
(section 2.2). Three cost structures follow, all reproduced here
against a :class:`repro.Database`:

* per-statement overhead — each algorithm step is a separate SQL
  statement (parse, bind, optimize, commit) instead of one fused plan;
* full materialisation — every intermediate becomes a catalog table;
* black-box per-tuple UDF execution — the distance / contribution /
  moment kernels run row-at-a-time Python because the engine cannot
  vectorise what it cannot see (section 4.1).
"""

from __future__ import annotations

import math

import numpy as np

from ..types import DOUBLE


def _fresh_prefix(db) -> str:
    return f"madlib_tmp_{id(db) % 100_000}"


def _drop(db, *tables: str) -> None:
    for table in tables:
        db.execute(f"DROP TABLE IF EXISTS {table}")


def madlib_like_kmeans(
    db,
    data_table: str,
    centers_table: str,
    features: list[str],
    iterations: int,
    key: str = "id",
    center_id: str = "cid",
) -> list[tuple]:
    """k-Means driven statement-by-statement with a UDF distance.

    Returns the final (cid, c0, ...) center rows."""
    d = len(features)
    prefix = _fresh_prefix(db)
    work = f"{prefix}_centers"
    dist = f"{prefix}_dist"
    mind = f"{prefix}_mind"
    assign = f"{prefix}_assign"
    center_cols = [f"c{i}" for i in range(d)]

    def squared_distance(*values: float) -> float:
        total = 0.0
        for i in range(d):
            diff = values[i] - values[d + i]
            total += diff * diff
        return total

    db.create_function(
        f"{prefix}_dist_fn", squared_distance, DOUBLE, arity=2 * d
    )

    _drop(db, work, dist, mind, assign)
    init_cols = ", ".join(
        f"CAST({f} AS FLOAT) AS {c}"
        for f, c in zip(features, center_cols)
    )
    db.execute(
        f"CREATE TABLE {work} AS "
        f"SELECT {center_id} AS cid, {init_cols} FROM {centers_table}"
    )
    try:
        data_args = ", ".join(f"d.{f}" for f in features)
        center_args = ", ".join(f"c.{c}" for c in center_cols)
        averages = ", ".join(
            f"avg(d.{f}) AS {c}" for f, c in zip(features, center_cols)
        )
        for _round in range(iterations):
            _drop(db, dist, mind, assign)
            db.execute(
                f"CREATE TABLE {dist} AS "
                f"SELECT d.{key} AS pid, c.cid AS cid, "
                f"{prefix}_dist_fn({data_args}, {center_args}) AS dd "
                f"FROM {data_table} d, {work} c"
            )
            db.execute(
                f"CREATE TABLE {mind} AS "
                f"SELECT pid, min(dd) AS md FROM {dist} GROUP BY pid"
            )
            db.execute(
                f"CREATE TABLE {assign} AS "
                f"SELECT t.pid AS pid, min(t.cid) AS cid "
                f"FROM {dist} t, {mind} m "
                f"WHERE t.pid = m.pid AND t.dd = m.md GROUP BY t.pid"
            )
            db.execute(f"DROP TABLE {work}")
            db.execute(
                f"CREATE TABLE {work} AS "
                f"SELECT a.cid AS cid, {averages} "
                f"FROM {assign} a, {data_table} d "
                f"WHERE a.pid = d.{key} GROUP BY a.cid"
            )
        return db.execute(
            f"SELECT * FROM {work} ORDER BY cid"
        ).rows
    finally:
        _drop(db, work, dist, mind, assign)


def madlib_like_pagerank(
    db,
    edges_table: str,
    damping: float,
    iterations: int,
    src: str = "src",
    dst: str = "dest",
) -> list[tuple]:
    """PageRank driven statement-by-statement; the per-edge contribution
    runs in a black-box UDF. Returns (vertex, rank) rows."""
    prefix = _fresh_prefix(db)
    ranks = f"{prefix}_ranks"
    new_ranks = f"{prefix}_ranks_next"
    deg = f"{prefix}_deg"

    def contribution(rank: float, outdeg: int) -> float:
        return rank / outdeg if outdeg else 0.0

    db.create_function(
        f"{prefix}_contrib_fn", contribution, DOUBLE, arity=2
    )

    _drop(db, ranks, new_ranks, deg)
    db.execute(
        f"CREATE TABLE {deg} AS SELECT {src} AS v, count(*) AS outdeg "
        f"FROM {edges_table} GROUP BY {src}"
    )
    n = db.execute(
        f"SELECT count(*) FROM (SELECT {src} AS v FROM {edges_table} "
        f"UNION SELECT {dst} FROM {edges_table}) vv"
    ).scalar()
    db.execute(
        f"CREATE TABLE {ranks} AS "
        f"SELECT vs.v AS v, 1.0 / {n} AS rank FROM "
        f"(SELECT {src} AS v FROM {edges_table} "
        f" UNION SELECT {dst} FROM {edges_table}) vs"
    )
    try:
        base = (1.0 - damping) / n
        for _round in range(iterations):
            _drop(db, new_ranks)
            db.execute(
                f"CREATE TABLE {new_ranks} AS "
                f"SELECT e.{dst} AS v, "
                f"{base} + {damping} * "
                f"sum({prefix}_contrib_fn(r.rank, dg.outdeg)) AS rank "
                f"FROM {ranks} r, {edges_table} e, {deg} dg "
                f"WHERE r.v = e.{src} AND e.{src} = dg.v "
                f"GROUP BY e.{dst}"
            )
            db.execute(f"DROP TABLE {ranks}")
            db.execute(
                f"CREATE TABLE {ranks} AS SELECT v, rank FROM {new_ranks}"
            )
        return db.execute(
            f"SELECT v, rank FROM {ranks} ORDER BY v"
        ).rows
    finally:
        _drop(db, ranks, new_ranks, deg)


def madlib_like_naive_bayes_train(
    db,
    train_table: str,
    label: str,
    features: list[str],
) -> list[tuple]:
    """NB training with the moment kernels in black-box UDFs: the square
    runs per tuple, the stddev finalisation per (class, attribute).
    Returns (class, attribute, prior, mean, stddev) rows."""
    prefix = _fresh_prefix(db)
    moments = f"{prefix}_moments"

    def square(value: float) -> float:
        return value * value

    def finalize_std(sumsq: float, total: float, count: int) -> float:
        mean = total / count
        return math.sqrt(max(sumsq / count - mean * mean, 0.0))

    db.create_function(f"{prefix}_sq_fn", square, DOUBLE, arity=1)
    db.create_function(
        f"{prefix}_std_fn", finalize_std, DOUBLE, arity=3
    )

    n = db.execute(f"SELECT count(*) FROM {train_table}").scalar()
    k = db.execute(
        f"SELECT count(DISTINCT {label}) FROM {train_table}"
    ).scalar()
    _drop(db, moments)
    rows_out: list[tuple] = []
    try:
        for feature in features:
            _drop(db, moments)
            db.execute(
                f"CREATE TABLE {moments} AS "
                f"SELECT {label} AS class, count(*) AS cnt, "
                f"sum({feature}) AS s, "
                f"sum({prefix}_sq_fn({feature})) AS sq "
                f"FROM {train_table} GROUP BY {label}"
            )
            result = db.execute(
                f"SELECT class, (cnt + 1.0) / ({n} + {k}) AS prior, "
                f"s / cnt AS mean, "
                f"{prefix}_std_fn(sq, s, cnt) AS stddev "
                f"FROM {moments} ORDER BY class"
            )
            for klass, prior, mean, stddev in result.rows:
                rows_out.append((klass, feature, prior, mean, stddev))
        rows_out.sort(key=lambda r: (str(r[0]), r[1]))
        return rows_out
    finally:
        _drop(db, moments)
