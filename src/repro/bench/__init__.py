"""Benchmark harness regenerating every table and figure of the paper.

:mod:`repro.bench.experiments` defines the workload setups and the
per-system runners (the six series of Figures 4 and 5 plus the layer-1
client of Figure 1); :mod:`repro.bench.runner` times them and prints the
paper-shaped series tables; ``python -m repro.bench`` is the CLI. The
``benchmarks/`` directory wraps the same runners in pytest-benchmark.
"""

from .runner import BenchResult, SeriesTable, measure
from .experiments import (
    KMeansSetup,
    PageRankSetup,
    NaiveBayesSetup,
    KMEANS_SYSTEMS,
    PAGERANK_SYSTEMS,
    NAIVE_BAYES_SYSTEMS,
    setup_kmeans,
    setup_pagerank,
    setup_naive_bayes,
    run_kmeans,
    run_pagerank,
    run_naive_bayes,
)

__all__ = [
    "BenchResult",
    "SeriesTable",
    "measure",
    "KMeansSetup",
    "PageRankSetup",
    "NaiveBayesSetup",
    "KMEANS_SYSTEMS",
    "PAGERANK_SYSTEMS",
    "NAIVE_BAYES_SYSTEMS",
    "setup_kmeans",
    "setup_pagerank",
    "setup_naive_bayes",
    "run_kmeans",
    "run_pagerank",
    "run_naive_bayes",
]
