"""Workload setups and per-system runners for the evaluation.

One setup object per algorithm holds the data in *every* system's
resident format (tables for the database layers, partitioned cache for
Spark-like, Python lists for MATLAB-like), so a measured region covers
exactly what the paper measures: algorithm execution, not loading.

Interpreted baselines get per-experiment size caps (``MATLAB_MAX_*``,
``MADLIB_MAX_*``) so a full sweep finishes on a laptop; capped points
print as "—", as papers do for timed-out contenders. Raise the caps for
a full run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import Database
from ..baselines.external import ExternalToolClient
from ..baselines.madlib_like import (
    madlib_like_kmeans,
    madlib_like_naive_bayes_train,
    madlib_like_pagerank,
)
from ..baselines.matlab_like import (
    matlab_like_kmeans,
    matlab_like_naive_bayes_train,
    matlab_like_pagerank,
)
from ..baselines.spark_like import SparkLikeContext
from ..datagen.graphs import load_edge_table
from ..datagen.vectors import (
    feature_names,
    load_centers_table,
    load_vector_table,
)
from ..workloads import (
    kmeans_iterate_sql,
    kmeans_recursive_sql,
    naive_bayes_train_sql,
    pagerank_iterate_sql,
    pagerank_recursive_sql,
)

#: The six series of Figure 4 (k-Means), in the paper's legend order.
KMEANS_SYSTEMS = (
    "HyPer Operator",
    "HyPer Iterate",
    "HyPer SQL",
    "Spark-like",
    "MATLAB-like",
    "MADlib-like",
)
PAGERANK_SYSTEMS = KMEANS_SYSTEMS
NAIVE_BAYES_SYSTEMS = KMEANS_SYSTEMS

#: Interpreted-baseline caps (points above are skipped, shown as "—").
MATLAB_MAX_KMEANS_CELLS = 3_000_000  # n * d * k * iterations
MADLIB_MAX_KMEANS_CELLS = 10_000_000
MATLAB_MAX_PAGERANK_WORK = 3_000_000  # edges * iterations
MADLIB_MAX_PAGERANK_WORK = 10_000_000
MATLAB_MAX_NB_CELLS = 10_000_000  # n * d
MADLIB_MAX_NB_CELLS = 20_000_000

SPARK_PARTITIONS = 32


# ---------------------------------------------------------------------------
# k-Means (Figure 4 / Table 1)
# ---------------------------------------------------------------------------


@dataclass
class KMeansSetup:
    db: Database
    n: int
    d: int
    k: int
    iterations: int
    features: list[str]
    matrix: np.ndarray
    centers: np.ndarray
    spark: SparkLikeContext = field(default=None)  # type: ignore[assignment]
    spark_partitions: list = field(default_factory=list)
    matlab_points: list = field(default_factory=list)
    matlab_centers: list = field(default_factory=list)


def setup_kmeans(
    n: int, d: int, k: int, iterations: int = 3, seed: int = 0
) -> KMeansSetup:
    """Load one Table 1 configuration into every system's format."""
    db = Database()
    columns = load_vector_table(db, "data", n, d, seed=seed)
    center_cols = load_centers_table(db, "centers", columns, k, seed + 2)
    features = feature_names(d)
    matrix = np.column_stack([columns[f] for f in features])
    centers = np.column_stack([center_cols[f] for f in features])
    setup = KMeansSetup(
        db=db, n=n, d=d, k=k, iterations=iterations, features=features,
        matrix=matrix, centers=centers,
    )
    setup.spark = SparkLikeContext(SPARK_PARTITIONS)
    setup.spark_partitions = setup.spark.parallelize(matrix)
    if n * d * k * iterations <= MATLAB_MAX_KMEANS_CELLS:
        setup.matlab_points = matrix.tolist()
        setup.matlab_centers = centers.tolist()
    return setup


def run_kmeans(setup: KMeansSetup, system: str) -> Optional[object]:
    """Execute one k-Means series member; returns its result, or None
    when the point is skipped (over the system's cap)."""
    feats = ", ".join(setup.features)
    if system == "HyPer Operator":
        return setup.db.execute(
            f"SELECT * FROM KMEANS((SELECT {feats} FROM data), "
            f"(SELECT {feats} FROM centers), {setup.iterations})"
        )
    if system == "HyPer Iterate":
        return setup.db.execute(
            kmeans_iterate_sql(
                "data", "centers", setup.features, setup.iterations
            )
        )
    if system == "HyPer SQL":
        return setup.db.execute(
            kmeans_recursive_sql(
                "data", "centers", setup.features, setup.iterations
            )
        )
    if system == "Spark-like":
        return _spark_kmeans(setup)
    if system == "MATLAB-like":
        if not setup.matlab_points:
            return None
        return matlab_like_kmeans(
            setup.matlab_points, setup.matlab_centers, setup.iterations
        )
    if system == "MADlib-like":
        work = setup.n * setup.d * setup.k * setup.iterations
        if work > MADLIB_MAX_KMEANS_CELLS:
            return None
        return madlib_like_kmeans(
            setup.db, "data", "centers", setup.features,
            setup.iterations,
        )
    if system == "External tool":
        client = ExternalToolClient(setup.db)
        return client.kmeans(
            f"SELECT {feats} FROM data",
            f"SELECT {feats} FROM centers",
            setup.iterations,
        )
    raise ValueError(f"unknown k-Means system {system!r}")


def _spark_kmeans(setup: KMeansSetup) -> np.ndarray:
    """Spark-like k-Means from the pre-cached partitioned RDD."""
    sc = setup.spark
    centers = setup.centers.copy()
    k, d = centers.shape
    from ..baselines.spark_like import _kmeans_partition_task

    for _round in range(setup.iterations):
        partials = sc.run_stage(
            setup.spark_partitions, _kmeans_partition_task, centers
        )
        sums = np.zeros((k, d))
        counts = np.zeros(k, dtype=np.int64)
        for part_sums, part_counts in partials:
            sums += part_sums
            counts += part_counts
        non_empty = counts > 0
        centers[non_empty] = sums[non_empty] / counts[non_empty, None]
    return centers


# ---------------------------------------------------------------------------
# PageRank (Figure 5 left)
# ---------------------------------------------------------------------------


@dataclass
class PageRankSetup:
    db: Database
    n_vertices: int
    n_edges: int
    damping: float
    iterations: int
    src: np.ndarray
    dst: np.ndarray
    matlab_edges: list = field(default_factory=list)


def setup_pagerank(
    n_vertices: int,
    n_edges: int,
    damping: float = 0.85,
    iterations: int = 45,
    seed: int = 0,
) -> PageRankSetup:
    db = Database()
    src, dst = load_edge_table(db, "edges", n_vertices, n_edges, seed)
    setup = PageRankSetup(
        db=db, n_vertices=n_vertices, n_edges=len(src),
        damping=damping, iterations=iterations, src=src, dst=dst,
    )
    if len(src) * iterations <= MATLAB_MAX_PAGERANK_WORK:
        setup.matlab_edges = list(zip(src.tolist(), dst.tolist()))
    return setup


def run_pagerank(setup: PageRankSetup, system: str) -> Optional[object]:
    if system == "HyPer Operator":
        return setup.db.execute(
            f"SELECT * FROM PAGERANK((SELECT src, dest FROM edges), "
            f"{setup.damping}, 0.0, {setup.iterations})"
        )
    if system == "HyPer Iterate":
        return setup.db.execute(
            pagerank_iterate_sql("edges", setup.damping, setup.iterations)
        )
    if system == "HyPer SQL":
        return setup.db.execute(
            pagerank_recursive_sql(
                "edges", setup.damping, setup.iterations
            )
        )
    if system == "Spark-like":
        sc = SparkLikeContext(SPARK_PARTITIONS)
        return sc.pagerank(
            setup.src, setup.dst, setup.damping, setup.iterations
        )
    if system == "MATLAB-like":
        if not setup.matlab_edges:
            return None
        return matlab_like_pagerank(
            setup.matlab_edges, setup.damping, setup.iterations
        )
    if system == "MADlib-like":
        if setup.n_edges * setup.iterations > MADLIB_MAX_PAGERANK_WORK:
            return None
        return madlib_like_pagerank(
            setup.db, "edges", setup.damping, setup.iterations
        )
    if system == "External tool":
        client = ExternalToolClient(setup.db)
        return client.pagerank(
            "SELECT src, dest FROM edges", setup.damping,
            setup.iterations,
        )
    raise ValueError(f"unknown PageRank system {system!r}")


# ---------------------------------------------------------------------------
# Naive Bayes training (Figure 5 middle/right)
# ---------------------------------------------------------------------------


@dataclass
class NaiveBayesSetup:
    db: Database
    n: int
    d: int
    features: list[str]
    labels: np.ndarray
    matrix: np.ndarray
    spark: SparkLikeContext = field(default=None)  # type: ignore[assignment]
    matlab_rows: list = field(default_factory=list)
    matlab_labels: list = field(default_factory=list)


def setup_naive_bayes(n: int, d: int, seed: int = 0) -> NaiveBayesSetup:
    db = Database()
    columns = load_vector_table(
        db, "train", n, d, seed=seed, with_label=True
    )
    features = feature_names(d)
    matrix = np.column_stack([columns[f] for f in features])
    labels = columns["label"]
    setup = NaiveBayesSetup(
        db=db, n=n, d=d, features=features, labels=labels, matrix=matrix,
    )
    setup.spark = SparkLikeContext(SPARK_PARTITIONS)
    if n * d <= MATLAB_MAX_NB_CELLS:
        setup.matlab_rows = matrix.tolist()
        setup.matlab_labels = labels.tolist()
    return setup


def run_naive_bayes(
    setup: NaiveBayesSetup, system: str
) -> Optional[object]:
    feats = ", ".join(setup.features)
    if system == "HyPer Operator":
        return setup.db.execute(
            f"SELECT * FROM NAIVE_BAYES_TRAIN("
            f"(SELECT label, {feats} FROM train))"
        )
    if system == "HyPer Iterate":
        # NB training is not iterative; the SQL formulation is the same
        # single-pass aggregation for both layer-3 variants.
        return setup.db.execute(
            naive_bayes_train_sql("train", "label", setup.features)
        )
    if system == "HyPer SQL":
        return setup.db.execute(
            naive_bayes_train_sql("train", "label", setup.features)
        )
    if system == "Spark-like":
        return setup.spark.naive_bayes_train(setup.labels, setup.matrix)
    if system == "MATLAB-like":
        if not setup.matlab_rows:
            return None
        return matlab_like_naive_bayes_train(
            setup.matlab_labels, setup.matlab_rows
        )
    if system == "MADlib-like":
        if setup.n * setup.d > MADLIB_MAX_NB_CELLS:
            return None
        return madlib_like_naive_bayes_train(
            setup.db, "train", "label", setup.features
        )
    if system == "External tool":
        client = ExternalToolClient(setup.db)
        return client.naive_bayes_train(
            f"SELECT label, {feats} FROM train"
        )
    raise ValueError(f"unknown Naive Bayes system {system!r}")
