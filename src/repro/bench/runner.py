"""Timing and reporting utilities for the benchmark harness."""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class BenchResult:
    """One measured point: a series (system) at one sweep value."""

    series: str
    x: object
    seconds: Optional[float]  # None = skipped (over the system's cap)
    note: str = ""


def measure(fn: Callable[[], object], repeat: int = 1) -> float:
    """Best-of-``repeat`` wall-clock seconds of ``fn()``."""
    best = float("inf")
    for _ in range(max(repeat, 1)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


@dataclass
class SeriesTable:
    """Collects results and prints them as the paper's figures print:
    one row per sweep value, one column per system series.

    ``units`` overrides the per-series value suffix (default "s",
    seconds); use "" for plain counts (e.g. live-tuple columns)."""

    title: str
    xlabel: str
    series_names: list[str]
    results: list[BenchResult] = field(default_factory=list)
    units: dict = field(default_factory=dict)

    def add(self, result: BenchResult) -> None:
        self.results.append(result)

    def record(
        self, series: str, x: object, seconds: Optional[float],
        note: str = "",
    ) -> None:
        self.add(BenchResult(series, x, seconds, note))

    def x_values(self) -> list[object]:
        seen: list[object] = []
        for result in self.results:
            if result.x not in seen:
                seen.append(result.x)
        return seen

    def lookup(self, series: str, x: object) -> Optional[BenchResult]:
        for result in self.results:
            if result.series == series and result.x == x:
                return result
        return None

    def format(self) -> str:
        width = max(
            [len(self.xlabel)] + [len(str(x)) for x in self.x_values()]
        ) + 2
        col = max([12] + [len(s) + 2 for s in self.series_names])
        lines = [self.title, "=" * len(self.title)]
        header = self.xlabel.ljust(width) + "".join(
            name.rjust(col) for name in self.series_names
        )
        lines.append(header)
        lines.append("-" * len(header))
        for x in self.x_values():
            cells = []
            for name in self.series_names:
                result = self.lookup(name, x)
                if result is None or result.seconds is None:
                    cells.append("—".rjust(col))
                else:
                    unit = self.units.get(name, "s")
                    if unit == "":
                        cells.append(
                            f"{result.seconds:g}".rjust(col)
                        )
                    else:
                        cells.append(
                            f"{result.seconds:.4f}{unit}".rjust(col)
                        )
            lines.append(str(x).ljust(width) + "".join(cells))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.format())
        print()

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "xlabel": self.xlabel,
            "results": [
                {
                    "series": r.series,
                    "x": str(r.x),
                    "seconds": r.seconds,
                    "note": r.note,
                }
                for r in self.results
            ],
        }


def write_bench_json(
    name: str,
    table: SeriesTable,
    directory: str = "results",
    metrics: Optional[dict] = None,
) -> str:
    """Write one experiment's measurements to
    ``<directory>/BENCH_<name>.json``, embedding a metrics snapshot of
    the engine counters the run produced; returns the path written."""
    from ..exec.parallel import resolve_workers

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    payload = table.to_dict()
    payload["experiment"] = name
    payload["workers"] = resolve_workers(None)
    payload["metrics"] = metrics if metrics is not None else {}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path
