"""Adaptive-optimization benchmark: bounded top-N sort and
cardinality feedback.

Usage::

    python -m repro.bench.topn            # full run, writes results/
    python -m repro.bench.topn --smoke    # CI-sized correctness pass

Two experiments:

``topn``
    ``SELECT ... ORDER BY v LIMIT k`` for k in {1, 10, 100, 1000} at
    1M rows, fused top-N vs the full-sort-then-limit pipeline. The two
    legs must return identical rows; the fused leg sorts only the
    candidate set (argpartition + stable sort of ~k rows) instead of
    all n.

``feedback``
    Two TPC-H-shaped joins whose filter — a conjunction of four
    ~97%-selective predicates on noisy DOUBLE columns — defeats both
    the static selectivity guesses and the table statistics, executed
    repeatedly on a feedback-enabled database vs a feedback-disabled
    twin. After the first execution the feedback database re-optimizes
    from observed cardinalities (build side flips to the truly-smaller
    dimension table, unlocking the small-build raw-key join path); the
    static twin keeps the misestimated plan.

The full run writes ``results/BENCH_topn.json`` and
``results/TOPN.md``. ``--smoke`` shrinks the data (no files written)
and exits non-zero if the legs disagree on any row — it is wired into
``make test``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from ..api.database import Database
from .runner import SeriesTable, measure


# ---------------------------------------------------------------------------
# Experiment 1: top-N vs full sort
# ---------------------------------------------------------------------------


def _build_sort_db(n_rows: int, topn: bool) -> Database:
    rng = np.random.default_rng(42)
    db = Database(topn=topn, profile_operators=False)
    db.execute(
        "CREATE TABLE events (id INTEGER, v DOUBLE, grp INTEGER)"
    )
    db.load_columns(
        "events",
        {
            "id": np.arange(n_rows, dtype=np.int64),
            "v": rng.random(n_rows),
            "grp": (np.arange(n_rows, dtype=np.int64) * 7919) % 1000,
        },
    )
    return db


def run_topn(
    n_rows: int, ks: list[int], repeat: int
) -> tuple[SeriesTable, dict]:
    table = SeriesTable(
        title=f"Top-N vs full sort ({n_rows:,} rows)",
        xlabel="k (LIMIT)",
        series_names=["full_sort", "topn", "speedup"],
        units={"speedup": ""},
    )
    fused = _build_sort_db(n_rows, topn=True)
    full = _build_sort_db(n_rows, topn=False)
    speedups = {}
    try:
        for k in ks:
            sql = (
                f"SELECT id, v FROM events ORDER BY v, id LIMIT {k}"
            )
            rows_fused = fused.execute(sql).rows
            rows_full = full.execute(sql).rows
            if rows_fused != rows_full:
                raise AssertionError(
                    f"top-N and full sort disagree at k={k}"
                )
            t_full = measure(lambda: full.execute(sql), repeat)
            t_fused = measure(lambda: fused.execute(sql), repeat)
            table.record("full_sort", k, t_full)
            table.record("topn", k, t_fused)
            speedup = t_full / t_fused if t_fused > 0 else float("inf")
            table.record("speedup", k, round(speedup, 2), note="x")
            speedups[k] = speedup
    finally:
        fused.close()
        full.close()
    return table, speedups


# ---------------------------------------------------------------------------
# Experiment 2: feedback vs static plans on TPC-H-shaped joins
# ---------------------------------------------------------------------------


def _build_tpch_db(scale_rows: int, feedback: bool) -> Database:
    """Lineitem/part/supplier-shaped tables where a conjunction of
    four ~97%-selective predicates compounds the static equality guess
    (10% each) into a ruinous underestimate: ``0.1^4`` of the fact
    table instead of ~89%. The flags are noisy DOUBLE columns, so the
    statistics provider has no NDV for them either — only observed
    cardinalities can fix the estimate. The misestimate makes the
    optimizer build the hash join on the "tiny" filtered fact side
    (actually ~89% of it), which forecloses the small-build raw-key
    join path; feedback flips the build side to the genuinely small
    dimension table."""
    rng = np.random.default_rng(7)
    db = Database(feedback=feedback, plan_cache=True)
    n_items = scale_rows
    # Dimension sizes clamp to the key space so smoke-scale runs stay
    # valid; at the full 1M scale these are 200 parts / 500 suppliers.
    n_parts = min(200, max(4, n_items // 50))
    supp_space = max(4, n_items // 50)
    n_suppliers = min(500, max(2, supp_space // 4))

    def flag() -> np.ndarray:
        return np.where(
            rng.random(n_items) < 0.97,
            1.0,
            rng.random(n_items) + 2.0,
        )

    db.execute(
        "CREATE TABLE lineitem (l_partkey INTEGER, l_suppkey INTEGER, "
        "l_qty DOUBLE, f1 DOUBLE, f2 DOUBLE, f3 DOUBLE, f4 DOUBLE)"
    )
    db.load_columns(
        "lineitem",
        {
            "l_partkey": rng.integers(0, n_items, n_items),
            "l_suppkey": rng.integers(0, supp_space, n_items),
            "l_qty": rng.random(n_items) * 50.0,
            "f1": flag(),
            "f2": flag(),
            "f3": flag(),
            "f4": flag(),
        },
    )
    db.execute("CREATE TABLE part (p_partkey INTEGER)")
    db.load_columns(
        "part",
        {
            "p_partkey": rng.choice(
                n_items, size=n_parts, replace=False
            ).astype(np.int64),
        },
    )
    db.execute("CREATE TABLE supplier (s_suppkey INTEGER)")
    db.load_columns(
        "supplier",
        {
            "s_suppkey": rng.choice(
                supp_space, size=n_suppliers, replace=False
            ).astype(np.int64),
        },
    )
    return db


_FLAGS = "f1 = 1.0 AND f2 = 1.0 AND f3 = 1.0 AND f4 = 1.0"


def _feedback_queries() -> list[tuple[str, str]]:
    return [
        (
            "lineitem-part",
            "SELECT count(*), sum(l_qty) FROM lineitem "
            "JOIN part ON l_partkey = p_partkey "
            f"WHERE {_FLAGS}",
        ),
        (
            "lineitem-supplier",
            "SELECT count(*), sum(l_qty) FROM lineitem "
            "JOIN supplier ON l_suppkey = s_suppkey "
            f"WHERE {_FLAGS}",
        ),
    ]


def _rows_close(a: list, b: list) -> bool:
    """Exact equality except for floats, which a plan change may
    legitimately perturb in the last ulp: a different build side emits
    join rows in a different order, so ``sum`` over DOUBLE accumulates
    with different rounding."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for x, y in zip(row_a, row_b):
            if isinstance(x, float) and isinstance(y, float):
                if not np.isclose(x, y, rtol=1e-9, atol=0.0):
                    return False
            elif x != y:
                return False
    return True


def run_feedback(
    scale_rows: int, execs: int, repeat: int
) -> tuple[SeriesTable, dict]:
    table = SeriesTable(
        title=(
            f"Feedback vs static plans "
            f"({scale_rows:,} lineitem rows, {execs} executions)"
        ),
        xlabel="join",
        series_names=["static", "feedback", "speedup"],
        units={"speedup": ""},
    )
    adaptive = _build_tpch_db(scale_rows, feedback=True)
    static = _build_tpch_db(scale_rows, feedback=False)
    speedups = {}
    try:
        for name, sql in _feedback_queries():
            rows_static = static.execute(sql).rows
            # Warm-up: the first two executions let the feedback
            # database observe cardinalities, bump the plan-cache
            # epoch once, and settle on the re-optimized plan.
            for _ in range(2):
                rows_adaptive = adaptive.execute(sql).rows
            if not _rows_close(rows_adaptive, rows_static):
                raise AssertionError(
                    f"feedback changed results on {name}"
                )

            def run_many(db, sql=sql):
                for _ in range(execs):
                    db.execute(sql)

            t_static = measure(lambda: run_many(static), repeat)
            t_adaptive = measure(lambda: run_many(adaptive), repeat)
            table.record("static", name, t_static)
            table.record("feedback", name, t_adaptive)
            speedup = (
                t_static / t_adaptive if t_adaptive > 0
                else float("inf")
            )
            table.record("speedup", name, round(speedup, 2), note="x")
            speedups[name] = speedup
    finally:
        adaptive.close()
        static.close()
    return table, speedups


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def _write_results(
    topn_table: SeriesTable,
    topn_speedups: dict,
    fb_table: SeriesTable,
    fb_speedups: dict,
    directory: str = "results",
) -> None:
    os.makedirs(directory, exist_ok=True)
    payload = {
        "experiment": "topn",
        "topn": topn_table.to_dict(),
        "feedback": fb_table.to_dict(),
        "topn_speedups": {
            str(k): round(v, 2) for k, v in topn_speedups.items()
        },
        "feedback_speedups": {
            k: round(v, 2) for k, v in fb_speedups.items()
        },
    }
    path = os.path.join(directory, "BENCH_topn.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    md = [
        "# Adaptive optimization: top-N sort and cardinality feedback",
        "",
        "Produced by `make bench-topn` "
        "(`python -m repro.bench.topn`).",
        "",
        "## Bounded top-N vs full sort",
        "",
        "`ORDER BY v, id LIMIT k`: the fused operator partitions out "
        "the k smallest keys (`np.argpartition`) and stably sorts only "
        "the candidate set, instead of sorting all rows and discarding "
        "all but k. Both legs return bit-identical rows.",
        "",
        "```",
        topn_table.format(),
        "```",
        "",
        "## Feedback vs static plans",
        "",
        "The filter `f1 = 1.0 AND f2 = 1.0 AND f3 = 1.0 AND f4 = 1.0` "
        "matches ~89% of lineitem, but each equality on a noisy DOUBLE "
        "column is opaque to the static selectivity constants (10% "
        "guess each, compounding to 0.01%) and to the statistics "
        "provider (raw DOUBLE, no dictionary NDV). The static plan "
        "therefore believes the filtered fact side is tiny and builds "
        "its hash table there — paying a joint factorization of both "
        "inputs. After one execution the feedback path observes the "
        "true cardinality, bumps the plan-cache epoch once, and "
        "re-optimizes with the build side on the genuinely small "
        "dimension table, which also unlocks the small-build raw-key "
        "join path (no factorization of the million-row probe side). "
        "Results stay identical.",
        "",
        "```",
        fb_table.format(),
        "```",
        "",
        "See the \"Adaptive optimization\" section in "
        "docs/performance.md for the machinery.",
        "",
    ]
    with open(
        os.path.join(directory, "TOPN.md"), "w", encoding="utf-8"
    ) as handle:
        handle.write("\n".join(md))
    print(f"wrote {path} and {os.path.join(directory, 'TOPN.md')}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.topn",
        description=(
            "Benchmark bounded top-N sort and cardinality feedback."
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "CI-sized run: small data, correctness checked, no "
            "result files written"
        ),
    )
    parser.add_argument(
        "--rows", type=int, default=1_000_000,
        help="rows in the top-N table (default: 1,000,000)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="best-of repetitions per measurement (default: 3)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        topn_table, topn_speedups = run_topn(
            20_000, ks=[1, 10, 100], repeat=1
        )
        fb_table, _ = run_feedback(4_000, execs=2, repeat=1)
        topn_table.print()
        fb_table.print()
        print("topn smoke OK")
        return 0

    topn_table, topn_speedups = run_topn(
        args.rows, ks=[1, 10, 100, 1000], repeat=args.repeat
    )
    topn_table.print()
    fb_table, fb_speedups = run_feedback(
        args.rows, execs=3, repeat=args.repeat
    )
    fb_table.print()
    _write_results(topn_table, topn_speedups, fb_table, fb_speedups)
    if topn_speedups.get(10, 0.0) < 5.0:
        print(
            f"WARNING: top-N speedup at k=10 is "
            f"{topn_speedups.get(10, 0.0):.1f}x (< 5x target)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
