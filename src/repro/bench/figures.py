"""One function per paper table/figure, printing the measured series."""

from __future__ import annotations

import numpy as np

from ..datagen.graphs import graph_experiments
from ..datagen.vectors import (
    KMEANS_CLUSTER_SWEEP,
    KMEANS_DEFAULTS,
    KMEANS_DIMENSION_SWEEP,
    KMEANS_TUPLE_SWEEP,
    table1_experiments,
)
from .experiments import (
    KMEANS_SYSTEMS,
    NAIVE_BAYES_SYSTEMS,
    PAGERANK_SYSTEMS,
    run_kmeans,
    run_naive_bayes,
    run_pagerank,
    setup_kmeans,
    setup_naive_bayes,
    setup_pagerank,
)
from .runner import SeriesTable, measure


def _scaled_n(paper_n: int, scale: float) -> int:
    return max(int(paper_n * scale), 16)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def run_table1(scale: float = 0.001, repeat: int = 1) -> SeriesTable:
    """Generate every Table 1 dataset (scaled) and report its shape —
    validating that the full experiment grid is materialisable."""
    table = SeriesTable(
        f"Table 1 — k-Means dataset grid (scale={scale})",
        "sweep/point",
        ["n", "d", "k"],
        units={"n": "", "d": "", "k": ""},
    )
    for experiment in table1_experiments(scale):
        label = f"{experiment.sweep}:{experiment.n}x{experiment.d}k{experiment.k}"
        table.record("n", label, float(experiment.n))
        table.record("d", label, float(experiment.d))
        table.record("k", label, float(experiment.k))
    table.print()
    return table


# ---------------------------------------------------------------------------
# Figure 4 — k-Means
# ---------------------------------------------------------------------------


def _kmeans_sweep(
    title: str,
    xlabel: str,
    points: list[tuple[object, int, int, int]],
    repeat: int,
) -> SeriesTable:
    iterations = KMEANS_DEFAULTS["iterations"]
    table = SeriesTable(title, xlabel, list(KMEANS_SYSTEMS))
    for x, n, d, k in points:
        setup = setup_kmeans(n, d, k, iterations)
        for system in KMEANS_SYSTEMS:
            if run_kmeans(setup, system) is None:  # warm-up / cap probe
                table.record(system, x, None, "over cap")
                continue
            seconds = measure(
                lambda: run_kmeans(setup, system), repeat
            )
            table.record(system, x, seconds)
    table.print()
    return table


def run_fig4_tuples(scale: float = 0.001, repeat: int = 1) -> SeriesTable:
    d, k = KMEANS_DEFAULTS["d"], KMEANS_DEFAULTS["k"]
    points = [
        (f"{n:,}", _scaled_n(n, scale), d, k)
        for n in KMEANS_TUPLE_SWEEP
    ]
    return _kmeans_sweep(
        f"Figure 4 (left) — k-Means, varying tuples (scale={scale}, "
        f"d={d}, k={k}, 3 iterations)",
        "paper n",
        points,
        repeat,
    )


def run_fig4_dims(scale: float = 0.001, repeat: int = 1) -> SeriesTable:
    n = _scaled_n(KMEANS_DEFAULTS["n"], scale)
    k = KMEANS_DEFAULTS["k"]
    points = [(d, n, d, k) for d in KMEANS_DIMENSION_SWEEP]
    return _kmeans_sweep(
        f"Figure 4 (middle) — k-Means, varying dimensions (n={n}, k={k})",
        "dimensions",
        points,
        repeat,
    )


def run_fig4_clusters(scale: float = 0.001, repeat: int = 1) -> SeriesTable:
    n = _scaled_n(KMEANS_DEFAULTS["n"], scale)
    d = KMEANS_DEFAULTS["d"]
    points = [(k, n, d, k) for k in KMEANS_CLUSTER_SWEEP]
    return _kmeans_sweep(
        f"Figure 4 (right) — k-Means, varying clusters (n={n}, d={d})",
        "clusters",
        points,
        repeat,
    )


# ---------------------------------------------------------------------------
# Figure 5 — PageRank and Naive Bayes
# ---------------------------------------------------------------------------


def run_fig5_pagerank(scale: float = 0.001, repeat: int = 1) -> SeriesTable:
    table = SeriesTable(
        f"Figure 5 (left) — PageRank on LDBC-like graphs (scale={scale}, "
        "damping=0.85, 45 iterations)",
        "graph",
        list(PAGERANK_SYSTEMS),
    )
    for experiment in graph_experiments(scale):
        setup = setup_pagerank(
            experiment.n_vertices, experiment.n_edges
        )
        label = f"{experiment.n_vertices}v/{setup.n_edges}e"
        for system in PAGERANK_SYSTEMS:
            if run_pagerank(setup, system) is None:
                table.record(system, label, None, "over cap")
                continue
            seconds = measure(
                lambda: run_pagerank(setup, system), repeat
            )
            table.record(system, label, seconds)
    table.print()
    return table


def _nb_sweep(
    title: str,
    xlabel: str,
    points: list[tuple[object, int, int]],
    repeat: int,
) -> SeriesTable:
    table = SeriesTable(title, xlabel, list(NAIVE_BAYES_SYSTEMS))
    for x, n, d in points:
        setup = setup_naive_bayes(n, d)
        for system in NAIVE_BAYES_SYSTEMS:
            if run_naive_bayes(setup, system) is None:
                table.record(system, x, None, "over cap")
                continue
            seconds = measure(
                lambda: run_naive_bayes(setup, system), repeat
            )
            table.record(system, x, seconds)
    table.print()
    return table


def run_fig5_nb_tuples(scale: float = 0.001, repeat: int = 1) -> SeriesTable:
    d = KMEANS_DEFAULTS["d"]
    points = [
        (f"{n:,}", _scaled_n(n, scale), d) for n in KMEANS_TUPLE_SWEEP
    ]
    return _nb_sweep(
        f"Figure 5 (middle) — Naive Bayes training, varying tuples "
        f"(scale={scale}, d={d})",
        "paper n",
        points,
        repeat,
    )


def run_fig5_nb_dims(scale: float = 0.001, repeat: int = 1) -> SeriesTable:
    n = _scaled_n(KMEANS_DEFAULTS["n"], scale)
    points = [(d, n, d) for d in KMEANS_DIMENSION_SWEEP]
    return _nb_sweep(
        f"Figure 5 (right) — Naive Bayes training, varying dimensions "
        f"(n={n})",
        "dimensions",
        points,
        repeat,
    )


# ---------------------------------------------------------------------------
# Figure 1 — the four layers, qualitatively, on one k-Means workload
# ---------------------------------------------------------------------------


def run_fig1_layers(scale: float = 0.001, repeat: int = 1) -> SeriesTable:
    n = _scaled_n(KMEANS_DEFAULTS["n"], scale)
    d, k = KMEANS_DEFAULTS["d"], KMEANS_DEFAULTS["k"]
    iterations = KMEANS_DEFAULTS["iterations"]
    setup = setup_kmeans(n, d, k, iterations)
    layers = [
        ("layer 1: external tool", "External tool"),
        ("layer 2: UDF driver (MADlib-like)", "MADlib-like"),
        ("layer 3: SQL (recursive CTE)", "HyPer SQL"),
        ("layer 3: SQL (ITERATE)", "HyPer Iterate"),
        ("layer 4: in-core operator", "HyPer Operator"),
    ]
    table = SeriesTable(
        f"Figure 1 — integration layers on k-Means (n={n}, d={d}, k={k})",
        "layer",
        ["runtime"],
    )
    for label, system in layers:
        if run_kmeans(setup, system) is None:
            table.record("runtime", label, None, "over cap")
            continue
        seconds = measure(lambda: run_kmeans(setup, system), repeat)
        table.record("runtime", label, seconds)
    table.print()
    return table


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def run_ablation_iterate(
    scale: float = 0.001, repeat: int = 1
) -> SeriesTable:
    """ITERATE vs recursive CTE: runtime and peak live tuples of the
    iterative working relation (the section 5.1 memory argument)."""
    from ..workloads import kmeans_iterate_sql, kmeans_recursive_sql

    n = _scaled_n(KMEANS_DEFAULTS["n"], scale)
    d, k = KMEANS_DEFAULTS["d"], KMEANS_DEFAULTS["k"]
    table = SeriesTable(
        f"Ablation §5.1 — ITERATE vs recursive CTE (k-Means, n={n}, "
        f"d={d}, k={k})",
        "iterations",
        ["ITERATE s", "CTE s", "ITERATE tuples", "CTE tuples"],
        units={"ITERATE tuples": "", "CTE tuples": ""},
    )
    setup = setup_kmeans(n, d, k)
    for iterations in (2, 4, 8, 16):
        it_sql = kmeans_iterate_sql(
            "data", "centers", setup.features, iterations
        )
        rc_sql = kmeans_recursive_sql(
            "data", "centers", setup.features, iterations
        )
        it_seconds = measure(lambda: setup.db.execute(it_sql), repeat)
        it_tuples = setup.db.last_stats.peak_live_tuples
        rc_seconds = measure(lambda: setup.db.execute(rc_sql), repeat)
        rc_tuples = setup.db.last_stats.peak_live_tuples
        table.record("ITERATE s", iterations, it_seconds)
        table.record("CTE s", iterations, rc_seconds)
        table.record("ITERATE tuples", iterations, float(it_tuples))
        table.record("CTE tuples", iterations, float(rc_tuples))
    table.print()
    return table


def run_ablation_csr(scale: float = 0.001, repeat: int = 1) -> SeriesTable:
    """The section 6.3 claim: the operator's CSR index vs the relational
    join formulation, isolated on one graph at growing iteration counts
    (joins are per-iteration; the CSR build is once)."""
    vertices, edges = 11_000, 452_000
    n_vertices = max(int(vertices * max(scale, 0.01)), 64)
    n_edges = max(int(edges * max(scale, 0.01)), 128)
    setup = setup_pagerank(n_vertices, n_edges, iterations=0)
    from ..workloads import pagerank_iterate_sql

    table = SeriesTable(
        f"Ablation §6.3 — CSR operator vs relational joins "
        f"({n_vertices}v/{setup.n_edges}e)",
        "iterations",
        ["CSR operator", "relational joins"],
    )
    for iterations in (5, 15, 45):
        op_sql = (
            f"SELECT * FROM PAGERANK((SELECT src, dest FROM edges), "
            f"0.85, 0.0, {iterations})"
        )
        join_sql = pagerank_iterate_sql("edges", 0.85, iterations)
        table.record(
            "CSR operator", iterations,
            measure(lambda: setup.db.execute(op_sql), repeat),
        )
        table.record(
            "relational joins", iterations,
            measure(lambda: setup.db.execute(join_sql), repeat),
        )
    table.print()
    return table


def run_ablation_lambda(
    scale: float = 0.001, repeat: int = 1
) -> SeriesTable:
    """Section 7's point, isolated inside one operator: the same k-Means
    run with (a) the default fused distance, (b) a user SQL lambda
    compiled to vectorised code, and (c) a lambda whose body is a
    black-box Python UDF — which the compiler must run row-at-a-time
    because it cannot inspect it (section 4.1)."""
    from ..types import DOUBLE

    n = max(_scaled_n(KMEANS_DEFAULTS["n"], scale) // 4, 16)
    d, k = 4, KMEANS_DEFAULTS["k"]
    setup = setup_kmeans(n, d, k)
    feats = ", ".join(setup.features)
    lam = " + ".join(f"(a.{f} - b.{f})^2" for f in setup.features)
    args = ", ".join(
        [f"a.{f}" for f in setup.features]
        + [f"b.{f}" for f in setup.features]
    )

    def metric_udf(*values: float) -> float:
        total = 0.0
        for i in range(d):
            diff = values[i] - values[d + i]
            total += diff * diff
        return total

    setup.db.create_function("py_metric", metric_udf, DOUBLE, arity=2 * d)

    variants = [
        ("default distance (fused kernel)", f"{3}"),
        ("SQL lambda (compiled)", f"LAMBDA(a, b) {lam}, 3"),
        (
            "Python UDF lambda (black box)",
            f"LAMBDA(a, b) py_metric({args}), 3",
        ),
    ]
    table = SeriesTable(
        f"Ablation §7 — lambda compilation (k-Means, n={n}, d={d}, "
        f"k={k})",
        "variant",
        ["runtime"],
    )
    for label, tail in variants:
        sql = (
            f"SELECT * FROM KMEANS((SELECT {feats} FROM data), "
            f"(SELECT {feats} FROM centers), {tail})"
        )
        table.record(
            "runtime", label,
            measure(lambda: setup.db.execute(sql), repeat),
        )
    table.print()
    return table


# ---------------------------------------------------------------------------
# Statement cache (docs/performance.md)
# ---------------------------------------------------------------------------


def run_statement_cache(
    scale: float = 0.001, repeat: int = 1
) -> SeriesTable:
    """The hot-path stack on repeated statements: the same database
    workloads with the statement cache (and with it the kernel cache
    and zone-map pruning) enabled vs disabled.

    Two regimes from docs/performance.md:

    * **point query** — one parameterized single-row lookup executed
      in a tight loop, the OLTP-shaped case where per-statement
      parse/bind/optimize dominates and zone maps skip nearly every
      morsel;
    * **ITERATE k-Means** — one large layer-3 statement re-executed
      round after round, where the cached plan amortises a big
      compile but execution dominates.
    """
    from .. import Database
    from ..datagen.vectors import (
        feature_names,
        load_centers_table,
        load_vector_table,
    )
    from ..workloads import kmeans_iterate_sql

    point_rows = max(_scaled_n(20_000_000, scale), 20_000)
    point_execs = 300
    kmeans_n = _scaled_n(KMEANS_DEFAULTS["n"], scale)
    kmeans_rounds = 8
    table = SeriesTable(
        f"Statement cache — repeated statements (point rows="
        f"{point_rows}, execs={point_execs}; k-Means n={kmeans_n}, "
        f"rounds={kmeans_rounds})",
        "workload",
        ["cache on", "cache off"],
    )
    for series, plan_cache in (("cache on", True), ("cache off", False)):
        # Zone-aligned morsels (zone maps are 4096-row): pruning can
        # skip whole morsels on the point lookup. Same layout for both
        # legs — the cache-off engine just never prunes.
        db = Database(
            profile_operators=False, plan_cache=plan_cache,
            morsel_rows=4096,
        )
        db.execute(
            "CREATE TABLE points (id INTEGER, grp VARCHAR, v DOUBLE)"
        )
        db.executemany(
            "INSERT INTO points VALUES (?, ?, ?)",
            [(i, f"g{i % 31}", i * 0.5) for i in range(point_rows)],
        )
        sql = "SELECT grp, v FROM points WHERE id = ?"
        db.execute(sql, (1,))  # warm both legs identically

        def point_loop():
            for i in range(point_execs):
                db.execute(sql, (i * 37 % point_rows,))

        table.record(
            series, "point query", measure(point_loop, repeat),
            note=f"{point_execs} executions",
        )
        db.close()
    d, k = 4, KMEANS_DEFAULTS["k"]
    for series, plan_cache in (("cache on", True), ("cache off", False)):
        db = Database(profile_operators=False, plan_cache=plan_cache)
        columns = load_vector_table(db, "data", kmeans_n, d, seed=0)
        load_centers_table(db, "centers", columns, k, seed=2)
        sql = kmeans_iterate_sql(
            "data", "centers", feature_names(d), 3
        )
        db.execute(sql)  # warm both legs identically

        def kmeans_loop():
            for _round in range(kmeans_rounds):
                db.execute(sql)

        table.record(
            series, "ITERATE k-Means", measure(kmeans_loop, repeat),
            note=f"{kmeans_rounds} rounds",
        )
        db.close()
    table.print()
    return table


# ---------------------------------------------------------------------------
# Resource governor (docs/robustness.md)
# ---------------------------------------------------------------------------

def run_governor(
    scale: float = 0.001, repeat: int = 1
) -> SeriesTable:
    """Cancellation and deadline latency vs statement runtime.

    For each graph size, one non-convergent PAGERANK (epsilon=0, so it
    runs to the float fixpoint) is measured three ways:

    * **full runtime** — uninterrupted wall clock;
    * **cancel latency** — ``db.cancel()`` fires from another thread a
      quarter of the way in; the latency is cancel-signal to typed
      ``QueryCancelled``, bounded by one checkpoint interval (one SpMV
      round or one CSR build step), not by statement runtime;
    * **timeout latency** — a per-call deadline at a quarter of the
      runtime; the latency is deadline to typed ``QueryTimeout``.
    """
    import threading
    import time as _time

    from .. import Database
    from ..errors import QueryCancelled, QueryTimeout

    # The paper's LDBC-like graphs run to ~100M edges; scale 0.001
    # keeps the sweep laptop-sized.
    sweep = [
        max(_scaled_n(n, scale), 50_000)
        for n in (500_000_000, 1_000_000_000, 2_000_000_000)
    ]
    table = SeriesTable(
        "Resource governor — abort latency vs statement runtime "
        "(PAGERANK, epsilon=0)",
        "edges",
        ["full runtime", "cancel latency", "timeout latency"],
    )
    sql = (
        "SELECT * FROM PAGERANK((SELECT src, dst FROM e), "
        "0.85, 0.0, 1000000)"
    )
    for n_edges in sweep:
        db = Database(profile_operators=False)
        db.execute("CREATE TABLE e (src INTEGER, dst INTEGER)")
        rng = np.random.default_rng(7)
        n_vertices = max(n_edges // 13, 64)
        db.load_columns("e", {
            "src": rng.integers(0, n_vertices, size=n_edges),
            "dst": rng.integers(0, n_vertices, size=n_edges),
        })
        label = f"{n_edges:,}"

        full = measure(lambda: db.execute(sql), repeat)
        table.record(
            "full runtime", label, full,
            note=f"{db.last_governor['checkpoints']} checkpoints",
        )

        cancel_best = float("inf")
        for _ in range(max(repeat, 1)):
            outcome = {}

            def run():
                try:
                    db.execute(sql)
                    outcome["error"] = "completed"
                except QueryCancelled:
                    outcome["at"] = _time.perf_counter()

            thread = threading.Thread(target=run)
            thread.start()
            _time.sleep(full * 0.25)
            db.cancel()
            signalled = _time.perf_counter()
            thread.join()
            if "at" not in outcome:
                raise RuntimeError(
                    f"cancel bench: {outcome.get('error')}"
                )
            cancel_best = min(cancel_best, outcome["at"] - signalled)
        table.record(
            "cancel latency", label, cancel_best,
            note="signal to QueryCancelled",
        )

        timeout_best = float("inf")
        deadline_ms = full * 0.25 * 1e3
        for _ in range(max(repeat, 1)):
            start = _time.perf_counter()
            try:
                db.execute(sql, timeout_ms=deadline_ms)
                raise RuntimeError("timeout bench: completed")
            except QueryTimeout:
                observed = _time.perf_counter() - start
            timeout_best = min(
                timeout_best, observed - deadline_ms / 1e3
            )
        table.record(
            "timeout latency", label, timeout_best,
            note=f"deadline {deadline_ms:.0f}ms to QueryTimeout",
        )
        db.close()
    table.print()
    return table


# ---------------------------------------------------------------------------
# Encoded columnar storage (docs/storage.md)
# ---------------------------------------------------------------------------

def run_encoding(
    scale: float = 0.001, repeat: int = 1
) -> SeriesTable:
    """Encoded vs raw storage on a string-heavy shipments table:
    resident footprint plus repeated scans whose predicates the
    encoded leg evaluates directly on codes (dictionary equality,
    dictionary IN-list, frame-of-reference date range) without
    decoding.

    The ``footprint`` row records bytes, not seconds: the raw series
    reports what a pointer-free raw layout spends
    (``storage_bytes_raw``), the encoded series the bytes actually
    resident under the auto policy (``storage_bytes_encoded``).
    """
    from .. import Database

    n_rows = max(_scaled_n(50_000_000, scale), 50_000)
    execs = 40
    rng = np.random.default_rng(7)
    status_pool = np.array(
        ["cancelled", "delivered", "pending", "returned", "shipped"],
        dtype=object,
    )
    mode_pool = np.array(
        ["air freight", "ocean liner", "rail cargo", "road haulage"],
        dtype=object,
    )
    columns = {
        "id": np.arange(n_rows, dtype=np.int32),
        "status": status_pool[rng.integers(0, len(status_pool), n_rows)],
        "mode": mode_pool[rng.integers(0, len(mode_pool), n_rows)],
        "qty": rng.integers(1, 50, n_rows).astype(np.int32),
        "day": (8035 + rng.integers(0, 2500, n_rows)).astype(np.int32),
    }
    table = SeriesTable(
        f"Encoded columnar storage — footprint and predicate-on-codes "
        f"scans (n={n_rows}, execs={execs})",
        "measure",
        ["raw", "encoded"],
    )
    queries = [
        (
            "equality scan",
            "SELECT count(*) FROM shipments WHERE status = 'shipped'",
        ),
        (
            "IN scan",
            "SELECT count(*) FROM shipments "
            "WHERE mode IN ('air freight', 'ocean liner')",
        ),
        (
            "range scan",
            "SELECT count(*) FROM shipments WHERE day < 9000",
        ),
    ]
    for series, encoding in (("raw", "raw"), ("encoded", "auto")):
        db = Database(
            profile_operators=False, morsel_rows=4096,
            encoding=encoding,
        )
        db.execute(
            "CREATE TABLE shipments (id INTEGER, status VARCHAR, "
            "mode VARCHAR, qty INTEGER, day INTEGER)"
        )
        db.load_columns("shipments", columns)
        stats = db.storage_stats()["tables"]["shipments"]
        footprint = (
            stats["raw_bytes"] if series == "raw"
            else stats["encoded_bytes"]
        )
        table.record(
            series, "footprint", float(footprint), note="bytes",
        )
        for x, sql in queries:
            db.execute(sql)  # warm plan and kernel caches on both legs

            def scan_loop():
                for _ in range(execs):
                    db.execute(sql)

            table.record(
                series, x, measure(scan_loop, repeat),
                note=f"{execs} executions",
            )
        db.close()
    table.print()
    return table


# ---------------------------------------------------------------------------
# Observability overhead (docs/observability.md)
# ---------------------------------------------------------------------------

#: TPC-H-shaped battery queries (patterned after tests/sql_battery/)
#: over the :mod:`repro.testing.tpch` schema — the execution-bound
#: workload the observability-overhead experiment times.
_TPCH_BATTERY_QUERIES = (
    # Q1-shaped pricing summary: aggregate sweep over lineitem.
    """
    SELECT l.l_returnflag, l.l_linestatus,
           sum(l.l_quantity), sum(l.l_extendedprice),
           sum(l.l_extendedprice * (1 - l.l_discount)),
           avg(l.l_quantity), avg(l.l_discount), count(*)
    FROM lineitem l
    WHERE l.l_shipdate <= 10400
    GROUP BY l.l_returnflag, l.l_linestatus
    ORDER BY 1 ASC NULLS LAST, 2 ASC NULLS LAST
    """,
    # Q3-shaped shipping priority: three-way join + grouped revenue.
    """
    SELECT o.o_orderkey, o.o_orderdate,
           sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
    FROM customer c
    JOIN orders o ON c.c_custkey = o.o_custkey
    JOIN lineitem l ON l.l_orderkey = o.o_orderkey
    WHERE c.c_mktsegment = 'building'
      AND o.o_orderdate < 9200 AND l.l_shipdate > 9200
    GROUP BY o.o_orderkey, o.o_orderdate
    ORDER BY 2 ASC NULLS LAST, 1 ASC NULLS LAST
    LIMIT 10
    """,
    # Q6-shaped forecast revenue: single-table range-filter aggregate.
    """
    SELECT sum(l.l_extendedprice * l.l_discount) AS revenue
    FROM lineitem l
    WHERE l.l_shipdate >= 8400 AND l.l_shipdate < 8765
      AND l.l_discount BETWEEN 0.02 AND 0.06 AND l.l_quantity < 24
    """,
    # Q13-shaped customer order counts: LEFT JOIN + group per customer.
    """
    SELECT c.c_custkey, count(o.o_orderkey) AS c_count
    FROM customer c
    LEFT JOIN orders o ON c.c_custkey = o.o_custkey
    GROUP BY c.c_custkey
    ORDER BY 1 ASC NULLS LAST
    """,
)


def run_observability(
    scale: float = 0.001, repeat: int = 1
) -> SeriesTable:
    """The cost of the always-on observability stack: tracing, operator
    profiling, the query history store, and flight-recorder readiness.

    Three engine configurations over two workload shapes:

    * **full** — the default session: span trees, per-operator
      profiling with cardinality estimates, and one history record per
      statement;
    * **history off** — the same session with statement recording
      stubbed out, emulating the engine before the history store
      existed (the baseline the <5%% overhead target is against);
    * **no profiling** — ``profile_operators=False``, the documented
      micro-benchmark switch (also drops per-operator observations
      from history records).

    The workloads bracket the per-statement overhead ratio: the
    statement-cache point-query loop (statement-rate-bound, worst case
    — the fixed per-statement cost is the largest fraction of
    runtime), a scan+aggregate loop, and the TPC-H-shaped battery
    queries (execution-bound, typical case).

    Measurement is *interleaved*: all three sessions are built and
    warmed upfront, then timed rounds alternate across the legs
    (best-of per leg). Sequential per-leg timing cannot resolve a
    few-percent effect under shared-machine noise — slow phases land
    on whichever leg happens to be running; interleaving spreads them
    across all series instead.
    """
    import time

    from .. import Database
    from ..testing import tpch

    rows = max(_scaled_n(20_000_000, scale), 20_000)
    point_execs = 400
    scan_execs = 25
    battery_execs = 4
    tpch_tables = tpch.generate(scale=4.0, seed=7)
    table = SeriesTable(
        f"Observability overhead (rows={rows}, point execs="
        f"{point_execs}, scan execs={scan_execs}, battery execs="
        f"{battery_execs}x{len(_TPCH_BATTERY_QUERIES)})",
        "workload",
        ["full", "history off", "no profiling"],
    )
    configs = (
        ("full", {}, False),
        ("history off", {}, True),
        ("no profiling", {"profile_operators": False}, False),
    )
    point_sql = "SELECT grp, v FROM points WHERE id = ?"
    scan_sql = (
        "SELECT grp, count(*), sum(v), avg(v) "
        "FROM points GROUP BY grp"
    )
    source = [(i, f"g{i % 31}", i * 0.5) for i in range(rows)]
    legs = []
    for series, kwargs, stub_history in configs:
        db = Database(morsel_rows=4096, **kwargs)
        if stub_history:
            # Emulate the pre-history engine: the statement still
            # traces and profiles, but leaves no record behind.
            db._finish_statement = lambda *args, **kw: None
        db.execute(
            "CREATE TABLE points (id INTEGER, grp VARCHAR, v DOUBLE)"
        )
        db.executemany("INSERT INTO points VALUES (?, ?, ?)", source)
        for gen_table in tpch_tables:
            db.execute(gen_table.ddl())
            if gen_table.rows:
                db.insert_rows(gen_table.name, gen_table.rows)
        db.execute(point_sql, (1,))  # warm every leg identically
        db.execute(scan_sql)
        for sql in _TPCH_BATTERY_QUERIES:
            db.execute(sql)
        legs.append((series, db))

    def point_loop(db):
        for i in range(point_execs):
            db.execute(point_sql, (i * 37 % rows,))

    def scan_loop(db):
        for _ in range(scan_execs):
            db.execute(scan_sql)

    def battery_loop(db):
        for _ in range(battery_execs):
            for sql in _TPCH_BATTERY_QUERIES:
                db.execute(sql)

    workloads = (
        ("point query", point_loop, f"{point_execs} executions"),
        ("scan+aggregate", scan_loop, f"{scan_execs} executions"),
        (
            "TPC-H battery", battery_loop,
            f"{battery_execs}x{len(_TPCH_BATTERY_QUERIES)} executions",
        ),
    )
    best: dict[tuple[str, str], float] = {}
    for _ in range(max(repeat, 1)):
        for workload, loop, _note in workloads:
            for series, db in legs:
                start = time.perf_counter()
                loop(db)
                elapsed = time.perf_counter() - start
                key = (series, workload)
                if elapsed < best.get(key, float("inf")):
                    best[key] = elapsed
    for workload, _loop, note in workloads:
        for series, db in legs:
            table.record(
                series, workload, best[(series, workload)], note=note
            )
    # Wall-clock A/B diffs below the single-digit-percent level sit at
    # this machine's timing-noise floor, so also measure the recording
    # cost *directly*: accumulate perf_counter around _finish_statement
    # on the full-instrumentation leg. This per-statement number is
    # robust to scheduler noise (it sums only the instrumented section)
    # and is what results/OBSERVABILITY.md reasons from.
    full_db = legs[0][1]
    orig_finish = full_db._finish_statement
    spent = [0.0, 0]

    def timed_finish(*args, **kwargs):
        start = time.perf_counter()
        result = orig_finish(*args, **kwargs)
        spent[0] += time.perf_counter() - start
        spent[1] += 1
        return result

    full_db._finish_statement = timed_finish
    for _ in range(5):
        point_loop(full_db)
    full_db._finish_statement = orig_finish
    table.record(
        "full", "recording cost", spent[0] / spent[1],
        note=(
            f"per-statement _finish_statement time, in situ over "
            f"{spent[1]} point queries"
        ),
    )
    for _series, db in legs:
        db.close()
    table.print()
    return table
