"""Durability benchmark: recovery time vs history, and fsync cost.

Usage::

    python -m repro.bench.durability            # full run, writes results/
    python -m repro.bench.durability --smoke    # CI-sized correctness pass

Two experiments:

``recovery``
    Commit N single-row UPDATE transactions against a fixed-size
    table, close the database, and measure how long
    ``Database(wal_path=...)`` takes to come back, for N growing 8x.
    The table stays the same size the whole time — only the *committed
    history* (the WAL) grows. Two legs: ``replay_all`` recovers by
    replaying the entire log (no checkpoint), so recovery time grows
    linearly with history; ``checkpointed`` takes one
    ``db.checkpoint()`` before the last ``TAIL`` commits, so recovery
    restores the snapshot and replays only the fixed-size WAL suffix —
    flat no matter how much history came before. Both legs must
    recover the exact same table contents (row count and the update
    counter sum), and the checkpointed leg must report exactly
    ``TAIL`` replayed transactions (``db.last_recovery``).

``fsync``
    Per-commit latency of autocommitted single-row INSERTs on an
    in-memory database vs a WAL-backed one (one ``os.fsync`` per
    commit, the durability contract of docs/durability.md). Reports
    ms/commit for both and the overhead factor.

The full run writes ``results/BENCH_durability.json`` and
``results/DURABILITY.md``. ``--smoke`` shrinks the history (no files
written) and exits non-zero if any leg recovers the wrong state.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from ..api.database import Database
from .runner import SeriesTable


# Fixed number of commits left in the WAL suffix after the checkpoint;
# the checkpointed leg's recovery cost is proportional to this, not to
# the total history size.
TAIL = 25

#: Rows in the recovery experiment's table. It never grows — the
#: workload is UPDATE commits, so the WAL grows while the live state
#: stays this size. That isolates what a checkpoint actually bounds:
#: log length, not data volume.
TABLE_ROWS = 100


# ---------------------------------------------------------------------------
# Experiment 1: recovery time vs committed history
# ---------------------------------------------------------------------------


def _commit_history(wal_path: str, n_commits: int, checkpoint: bool) -> None:
    """Build a WAL whose history is ``n_commits`` single-row UPDATE
    transactions against a ``TABLE_ROWS``-row table; with
    ``checkpoint`` the last ``TAIL`` of them land after a snapshot."""
    db = Database(wal_path=wal_path, profile_operators=False)
    try:
        db.execute("CREATE TABLE events (id INTEGER, val INTEGER)")
        db.executemany(
            "INSERT INTO events VALUES (?, 0)",
            [(i,) for i in range(TABLE_ROWS)],
        )
        cut = max(n_commits - TAIL, 0) if checkpoint else n_commits
        for i in range(cut):
            db.execute(
                f"UPDATE events SET val = val + 1 "
                f"WHERE id = {i % TABLE_ROWS}"
            )
        if checkpoint:
            db.checkpoint()
            for i in range(cut, n_commits):
                db.execute(
                    f"UPDATE events SET val = val + 1 "
                    f"WHERE id = {i % TABLE_ROWS}"
                )
    finally:
        db.close()


def _measure_recovery(wal_path: str) -> tuple[float, dict]:
    """Cold-open the WAL once and return (seconds, last_recovery)."""
    start = time.perf_counter()
    db = Database(wal_path=wal_path, profile_operators=False)
    elapsed = time.perf_counter() - start
    try:
        recovery = dict(db.last_recovery or {})
        count, total = db.execute(
            "SELECT COUNT(*), SUM(val) FROM events"
        ).rows[0]
        recovery["recovered_rows"] = count
        recovery["recovered_updates"] = total
    finally:
        db.close()
    return elapsed, recovery


def run_recovery(
    history_sizes: list[int],
) -> tuple[SeriesTable, dict]:
    table = SeriesTable(
        title="Recovery time vs committed history",
        xlabel="commits",
        series_names=["replay_all", "checkpointed", "txns_replayed"],
        units={"txns_replayed": ""},
    )
    detail: dict = {}
    for n in history_sizes:
        point: dict = {"commits": n}
        for leg, checkpoint in (
            ("replay_all", False),
            ("checkpointed", True),
        ):
            with tempfile.TemporaryDirectory(
                prefix="repro-bench-dur-"
            ) as tmp:
                wal_path = os.path.join(tmp, "bench.wal")
                _commit_history(wal_path, n, checkpoint)
                elapsed, recovery = _measure_recovery(wal_path)
            if recovery.get("recovered_rows") != TABLE_ROWS:
                raise AssertionError(
                    f"{leg} at {n} commits recovered "
                    f"{recovery.get('recovered_rows')} rows, "
                    f"expected {TABLE_ROWS}"
                )
            if recovery.get("recovered_updates") != n:
                raise AssertionError(
                    f"{leg} at {n} commits recovered "
                    f"{recovery.get('recovered_updates')} update(s), "
                    f"expected {n}"
                )
            replayed = recovery.get("transactions_replayed")
            if checkpoint:
                if not recovery.get("snapshot_used"):
                    raise AssertionError(
                        f"checkpointed leg at {n} commits recovered "
                        "without using the snapshot"
                    )
                if replayed != TAIL:
                    raise AssertionError(
                        f"checkpointed leg at {n} commits replayed "
                        f"{replayed} txns, expected the {TAIL}-commit "
                        "suffix"
                    )
            table.record(leg, n, elapsed)
            point[leg] = {
                "seconds": elapsed,
                "transactions_replayed": replayed,
                "snapshot_used": bool(recovery.get("snapshot_used")),
            }
        table.record(
            "txns_replayed", n,
            point["checkpointed"]["transactions_replayed"],
        )
        detail[n] = point
    return table, detail


# ---------------------------------------------------------------------------
# Experiment 2: per-commit fsync overhead
# ---------------------------------------------------------------------------


def run_fsync(n_commits: int) -> tuple[SeriesTable, dict]:
    table = SeriesTable(
        title=f"Per-commit latency ({n_commits} autocommits)",
        xlabel="mode",
        series_names=["ms_per_commit", "commits_per_sec"],
        units={"ms_per_commit": "ms", "commits_per_sec": ""},
    )
    timings: dict = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-dur-") as tmp:
        for mode, wal_path in (
            ("memory", None),
            ("durable", os.path.join(tmp, "fsync.wal")),
        ):
            db = Database(wal_path=wal_path, profile_operators=False)
            try:
                db.execute(
                    "CREATE TABLE events (id INTEGER, word VARCHAR)"
                )
                start = time.perf_counter()
                for i in range(n_commits):
                    db.execute(
                        f"INSERT INTO events VALUES ({i}, 'w{i}')"
                    )
                elapsed = time.perf_counter() - start
            finally:
                db.close()
            per_commit = elapsed / n_commits
            table.record("ms_per_commit", mode, per_commit * 1e3, note="ms")
            table.record(
                "commits_per_sec", mode, round(1.0 / per_commit, 1)
            )
            timings[mode] = per_commit
    overhead = (
        timings["durable"] / timings["memory"]
        if timings["memory"] > 0 else float("inf")
    )
    return table, {
        "ms_per_commit": {
            mode: round(t * 1e3, 4) for mode, t in timings.items()
        },
        "overhead_factor": round(overhead, 2),
    }


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def _flatness(detail: dict) -> tuple[float, float]:
    """Growth factors of recovery time from the smallest to the
    largest history, per leg: (replay_all_growth, checkpointed_growth).
    A flat checkpointed leg stays near 1x while replay_all tracks the
    history growth."""
    sizes = sorted(detail)
    lo, hi = sizes[0], sizes[-1]

    def growth(leg: str) -> float:
        t_lo = detail[lo][leg]["seconds"]
        t_hi = detail[hi][leg]["seconds"]
        return t_hi / t_lo if t_lo > 0 else float("inf")

    return growth("replay_all"), growth("checkpointed")


def _write_results(
    rec_table: SeriesTable,
    rec_detail: dict,
    fsync_table: SeriesTable,
    fsync_summary: dict,
    directory: str = "results",
) -> None:
    os.makedirs(directory, exist_ok=True)
    replay_growth, ckpt_growth = _flatness(rec_detail)
    sizes = sorted(rec_detail)
    payload = {
        "experiment": "durability",
        "recovery": rec_table.to_dict(),
        "recovery_detail": {
            str(n): point for n, point in rec_detail.items()
        },
        "history_growth_factor": (
            round(sizes[-1] / sizes[0], 2) if sizes[0] else None
        ),
        "recovery_growth": {
            "replay_all": round(replay_growth, 2),
            "checkpointed": round(ckpt_growth, 2),
        },
        "checkpoint_tail_commits": TAIL,
        "fsync": fsync_table.to_dict(),
        "fsync_summary": fsync_summary,
    }
    path = os.path.join(directory, "BENCH_durability.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    md = [
        "# Durability: recovery time and the cost of fsync",
        "",
        "Produced by `make bench-durability` "
        "(`python -m repro.bench.durability`).",
        "",
        "## Recovery time vs committed history",
        "",
        "Each point commits N single-row UPDATE transactions against "
        f"a fixed {TABLE_ROWS}-row table, closes the database, and "
        "cold-opens it again — the live state never grows, only the "
        "committed history (the WAL) does. `replay_all` recovers by "
        "replaying the whole log, so its cost tracks the history "
        f"size; `checkpointed` took one `db.checkpoint()` {TAIL} "
        "commits before the end, so recovery restores the snapshot and "
        f"replays only the fixed {TAIL}-commit WAL suffix "
        "(`db.last_recovery` confirms `transactions_replayed == "
        f"{TAIL}` at every size). Both legs must recover the same "
        "table contents — row count and update-counter sum are "
        "checked against the workload.",
        "",
        "```",
        rec_table.format(),
        "```",
        "",
        f"Across the {sizes[-1] // sizes[0]}x history growth "
        f"({sizes[0]:,} to {sizes[-1]:,} commits), whole-log replay "
        f"slowed down {replay_growth:.1f}x while checkpointed "
        f"recovery moved {ckpt_growth:.2f}x — flat, because the "
        "snapshot absorbs the history and only the suffix is "
        "replayed.",
        "",
        "## Per-commit fsync overhead",
        "",
        "Autocommitted single-row INSERTs, in-memory vs WAL-backed. "
        "Durable mode pays one buffered frame write plus one "
        "`os.fsync` per commit — the price of the \"acknowledged "
        "means recoverable\" contract in docs/durability.md.",
        "",
        "```",
        fsync_table.format(),
        "```",
        "",
        f"Durable commit overhead: "
        f"{fsync_summary['overhead_factor']}x over in-memory "
        f"({fsync_summary['ms_per_commit']['durable']} ms vs "
        f"{fsync_summary['ms_per_commit']['memory']} ms per commit).",
        "",
        "See docs/durability.md for the WAL v2 format, checkpoint "
        "protocol, and the crash-recovery battery that enforces the "
        "contract.",
        "",
    ]
    with open(
        os.path.join(directory, "DURABILITY.md"), "w", encoding="utf-8"
    ) as handle:
        handle.write("\n".join(md))
    print(f"wrote {path} and {os.path.join(directory, 'DURABILITY.md')}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.durability",
        description=(
            "Benchmark WAL recovery time and per-commit fsync cost."
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "CI-sized run: small history, correctness checked, no "
            "result files written"
        ),
    )
    parser.add_argument(
        "--max-commits", type=int, default=4000,
        help=(
            "largest history size; the sweep runs at 1/8, 1/4, 1/2, "
            "and 1x of this (default: 4000)"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rec_table, rec_detail = run_recovery([40, 80])
        fsync_table, fsync_summary = run_fsync(40)
        rec_table.print()
        fsync_table.print()
        print("durability smoke OK")
        return 0

    top = args.max_commits
    sizes = [top // 8, top // 4, top // 2, top]
    rec_table, rec_detail = run_recovery(sizes)
    rec_table.print()
    fsync_table, fsync_summary = run_fsync(500)
    fsync_table.print()
    _write_results(rec_table, rec_detail, fsync_table, fsync_summary)
    replay_growth, ckpt_growth = _flatness(rec_detail)
    if ckpt_growth > 2.0:
        print(
            f"WARNING: checkpointed recovery grew {ckpt_growth:.1f}x "
            f"over an 8x history sweep (expected ~flat)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
