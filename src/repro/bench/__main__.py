"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench all --scale 0.001
    python -m repro.bench fig4_tuples fig5_pagerank --scale 0.01 --repeat 3

Experiments (paper locations in parentheses):

    table1             dataset grid validation (Table 1)
    fig4_tuples        k-Means runtime vs number of tuples (Fig. 4 left)
    fig4_dims          k-Means runtime vs dimensions (Fig. 4 middle)
    fig4_clusters      k-Means runtime vs clusters (Fig. 4 right)
    fig5_pagerank      PageRank vs graph size (Fig. 5 left)
    fig5_nb_tuples     Naive Bayes train vs tuples (Fig. 5 middle)
    fig5_nb_dims       Naive Bayes train vs dimensions (Fig. 5 right)
    fig1_layers        the four integration layers on one workload (Fig. 1)
    ablation_iterate   ITERATE vs recursive CTE memory & time (§5.1/§8.4.1)
    ablation_csr       CSR operator vs relational joins (§6.3/§8.4.2)
    ablation_lambda    compiled lambda vs interpreted UDF metric (§7)
    statement_cache    hot-path stack on/off on repeated statements
                       (docs/performance.md)
    governor           cancellation/deadline abort latency vs statement
                       runtime (docs/robustness.md)
    encoding           encoded vs raw storage: footprint and
                       predicate-on-codes scans (docs/storage.md)
    observability      always-on tracing/history/profiling overhead
                       (docs/observability.md)

``--scale`` scales the paper's data sizes (default 0.001: 1/1000 of the
1 TB-server workloads, laptop-sized). Runtimes will not match the
paper's absolute numbers; the series *ordering* and scaling shape should.
"""

from __future__ import annotations

import argparse
import sys

from ..obs.metrics import global_registry
from .runner import write_bench_json
from .figures import (
    run_ablation_csr,
    run_ablation_iterate,
    run_ablation_lambda,
    run_fig1_layers,
    run_fig4_clusters,
    run_fig4_dims,
    run_fig4_tuples,
    run_fig5_nb_dims,
    run_fig5_nb_tuples,
    run_encoding,
    run_fig5_pagerank,
    run_governor,
    run_observability,
    run_statement_cache,
    run_table1,
)

EXPERIMENTS = {
    "table1": run_table1,
    "fig4_tuples": run_fig4_tuples,
    "fig4_dims": run_fig4_dims,
    "fig4_clusters": run_fig4_clusters,
    "fig5_pagerank": run_fig5_pagerank,
    "fig5_nb_tuples": run_fig5_nb_tuples,
    "fig5_nb_dims": run_fig5_nb_dims,
    "fig1_layers": run_fig1_layers,
    "ablation_iterate": run_ablation_iterate,
    "ablation_csr": run_ablation_csr,
    "ablation_lambda": run_ablation_lambda,
    "statement_cache": run_statement_cache,
    "governor": run_governor,
    "encoding": run_encoding,
    "observability": run_observability,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names, or 'all'",
    )
    parser.add_argument(
        "--scale", type=float, default=0.001,
        help="fraction of the paper's data sizes (default 0.001)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="repetitions per point (best is reported)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write all measured points to a JSON file",
    )
    parser.add_argument(
        "--results-dir", metavar="DIR", default="results",
        help=(
            "directory for per-experiment BENCH_<name>.json files, "
            "each embedding a metrics snapshot (default: results)"
        ),
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else (
        args.experiments
    )
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiments {unknown}; choose from "
            f"{sorted(EXPERIMENTS)} or 'all'"
        )
    tables = {}
    for name in names:
        # Experiments open their own Database sessions; those mirror
        # into the process-wide registry, so resetting it before each
        # experiment gives a per-experiment metrics snapshot.
        global_registry().reset()
        tables[name] = EXPERIMENTS[name](
            scale=args.scale, repeat=args.repeat
        )
        path = write_bench_json(
            name, tables[name], directory=args.results_dir,
            metrics=global_registry().snapshot(),
        )
        print(f"wrote {path}")
    if args.json is not None:
        import json

        payload = {
            name: table.to_dict() for name, table in tables.items()
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
