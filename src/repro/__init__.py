"""repro — SQL- and operator-centric data analytics in a relational
main-memory database.

A from-scratch Python reproduction of Passing et al., *SQL- and
Operator-centric Data Analytics in Relational Main-Memory Databases*
(EDBT 2017): a columnar main-memory RDBMS with snapshot isolation, a
PostgreSQL-flavoured SQL dialect extended with the paper's non-appending
``ITERATE`` construct and SQL lambda expressions, and in-core analytics
operators (k-Means, PageRank, Naive Bayes) that compose freely with
relational operators in one query plan.

Quickstart::

    import repro

    db = repro.connect()
    db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
    db.insert_rows("pts", [(0.0, 0.0), (0.1, 0.2), (9.0, 9.1)])
    centers = db.execute(
        "SELECT * FROM KMEANS((SELECT x, y FROM pts),"
        " (SELECT x, y FROM pts LIMIT 2),"
        " LAMBDA(a, b) (a.x-b.x)^2 + (a.y-b.y)^2, 10)"
    )
    print(centers.rows)
"""

from .api.database import Database, connect
from .api.result import QueryResult
from .errors import (
    AdmissionRejected,
    AnalyticsError,
    BindError,
    CatalogError,
    ExecutionError,
    InjectedFault,
    IterationLimitError,
    MemoryBudgetExceeded,
    ParseError,
    PlanError,
    ProtocolError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResourceGovernorError,
    SerializationConflict,
    TransactionError,
    UDFError,
    WalCorruptionError,
    WorkerCrashError,
)
from .governor import CancelToken, QueryContext
from .types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    SQLType,
    VARCHAR,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "connect",
    "QueryResult",
    "ReproError",
    "ParseError",
    "BindError",
    "PlanError",
    "ExecutionError",
    "IterationLimitError",
    "ResourceGovernorError",
    "QueryCancelled",
    "QueryTimeout",
    "MemoryBudgetExceeded",
    "InjectedFault",
    "WorkerCrashError",
    "CancelToken",
    "QueryContext",
    "CatalogError",
    "TransactionError",
    "SerializationConflict",
    "WalCorruptionError",
    "UDFError",
    "AnalyticsError",
    "AdmissionRejected",
    "ProtocolError",
    "SQLType",
    "BOOLEAN",
    "INTEGER",
    "BIGINT",
    "DOUBLE",
    "VARCHAR",
    "DATE",
    "__version__",
]
