"""Temporary compressed-sparse-row graph index (paper section 6.3).

The PageRank operator does not touch base relations during iteration:
it first builds a CSR index over the edge input, **re-labelling** the
vertices to dense ids ``0..n_vertices-1`` so per-vertex state lives in
directly-indexed arrays (one read per neighbour rank access), and keeps a
reverse mapping to translate internal ids back to the original ids when
producing output — exactly the structure the paper describes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

import numpy as np

from ..errors import AnalyticsError

#: Vertices per SpMV chunk when a worker pool gathers in parallel.
#: Fixed (worker-independent) so chunk boundaries — and therefore the
#: per-segment float summation order — never depend on the worker count.
SPMV_CHUNK_VERTICES = 65_536

#: Cached CSR indexes. Keys embed a TableData.version_token, which is
#: unique per immutable table version, so DML simply stops the old
#: entry from being hit and the LRU evicts it. Small capacity: each
#: entry can hold arrays proportional to the edge count.
CSR_CACHE_CAPACITY = 8

_CSR_CACHE: "OrderedDict[tuple, CSRGraph]" = OrderedDict()
_CSR_LOCK = threading.Lock()


def csr_cache_lookup(key: tuple) -> Optional["CSRGraph"]:
    """The cached index for ``key``, refreshing its LRU position."""
    with _CSR_LOCK:
        graph = _CSR_CACHE.get(key)
        if graph is not None:
            _CSR_CACHE.move_to_end(key)
        return graph


def csr_cache_store(key: tuple, graph: "CSRGraph") -> None:
    with _CSR_LOCK:
        _CSR_CACHE[key] = graph
        _CSR_CACHE.move_to_end(key)
        while len(_CSR_CACHE) > CSR_CACHE_CAPACITY:
            _CSR_CACHE.popitem(last=False)


def csr_cache_clear() -> None:
    """Drop every cached index (tests)."""
    with _CSR_LOCK:
        _CSR_CACHE.clear()


class CSRGraph:
    """A directed graph in CSR form with dense relabelled vertex ids.

    Attributes:
        vertex_ids: original ids, indexed by internal id (the reverse
            mapping of section 6.3).
        out_offsets / out_targets: CSR of outgoing edges.
        in_offsets / in_sources: CSR of incoming edges (PageRank gathers
            over incoming neighbours).
        in_weights: per-incoming-edge weights aligned with ``in_sources``
            (all ones unless an edge-weight lambda was supplied).
    """

    def __init__(
        self,
        vertex_ids: np.ndarray,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        in_weights: np.ndarray,
    ):
        self.vertex_ids = vertex_ids
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_sources = in_sources
        self.in_weights = in_weights

    @property
    def nbytes(self) -> int:
        """Total bytes of the index arrays (governor memory ledger)."""
        return int(
            self.vertex_ids.nbytes
            + self.out_offsets.nbytes
            + self.out_targets.nbytes
            + self.in_offsets.nbytes
            + self.in_sources.nbytes
            + self.in_weights.nbytes
        )

    @property
    def n_vertices(self) -> int:
        return len(self.vertex_ids)

    @property
    def n_edges(self) -> int:
        return len(self.out_targets)

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.out_offsets)

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.in_offsets)

    def neighbors_out(self, internal_id: int) -> np.ndarray:
        lo = self.out_offsets[internal_id]
        hi = self.out_offsets[internal_id + 1]
        return self.out_targets[lo:hi]

    def neighbors_in(self, internal_id: int) -> np.ndarray:
        lo = self.in_offsets[internal_id]
        hi = self.in_offsets[internal_id + 1]
        return self.in_sources[lo:hi]

    def weighted_out_sums(self) -> np.ndarray:
        """Total outgoing edge weight per vertex (the normaliser of
        weighted PageRank). Computed from the incoming CSR, where the
        weights live, by scattering back to sources."""
        sums = np.zeros(self.n_vertices, dtype=np.float64)
        np.add.at(sums, self.in_sources, self.in_weights)
        return sums

    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        governor=None,
    ) -> "CSRGraph":
        """Build the index from parallel source/target id arrays.

        Ids may be arbitrary integers; they are re-labelled densely. Self
        loops and duplicate edges are kept (multigraph semantics, like
        summing repeated adjacency entries in the sparse matrix).

        ``governor`` (a :class:`repro.governor.QueryContext`) is
        checkpointed between the heavy build steps so a cancel or
        deadline aborts mid-build, not only once iteration begins."""
        if len(src) != len(dst):
            raise AnalyticsError("edge arrays differ in length")
        m = len(src)
        if weights is None:
            weights = np.ones(m, dtype=np.float64)
        elif len(weights) != m:
            raise AnalyticsError("edge weight array length mismatch")

        both = np.concatenate([src, dst])
        vertex_ids, dense = np.unique(both, return_inverse=True)
        src_dense = dense[:m].astype(np.int64)
        dst_dense = dense[m:].astype(np.int64)
        n = len(vertex_ids)
        if governor is not None:
            governor.check("csr_relabel")

        out_order = np.argsort(src_dense, kind="stable")
        out_targets = dst_dense[out_order]
        out_counts = np.bincount(src_dense, minlength=n)
        out_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(out_counts, out=out_offsets[1:])
        if governor is not None:
            governor.check("csr_out_edges")

        in_order = np.argsort(dst_dense, kind="stable")
        in_sources = src_dense[in_order]
        in_weights = weights[in_order].astype(np.float64)
        in_counts = np.bincount(dst_dense, minlength=n)
        in_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_counts, out=in_offsets[1:])

        return cls(
            vertex_ids=vertex_ids,
            out_offsets=out_offsets,
            out_targets=out_targets,
            in_offsets=in_offsets,
            in_sources=in_sources,
            in_weights=in_weights,
        )

    def gather_incoming(
        self, per_source: np.ndarray, pool=None
    ) -> np.ndarray:
        """For every vertex, the weighted sum over incoming edges of a
        per-source quantity — one vectorised reduceat over the CSR, the
        "single read per neighbour rank access" inner loop of 6.3.

        With a parallel ``pool``, the gather chunks over fixed vertex
        ranges (each chunk's edge slab is contiguous in CSR order and
        its output slice disjoint). Chunk boundaries land on segment
        boundaries, so every per-vertex sum adds the same elements in
        the same order as the serial reduceat — bit-identical output.
        """
        if self.n_edges == 0:
            return np.zeros(self.n_vertices, dtype=np.float64)
        n = self.n_vertices
        if pool is not None and pool.is_parallel \
                and n > SPMV_CHUNK_VERTICES:
            from ..exec.parallel import morsel_ranges

            sums = np.zeros(n, dtype=np.float64)
            ranges = morsel_ranges(n, SPMV_CHUNK_VERTICES)
            chunks = pool.map_ordered(
                lambda rng: self._gather_chunk(per_source, rng), ranges
            )
            for (vs, ve), chunk in zip(ranges, chunks):
                sums[vs:ve] = chunk
            return sums
        contributions = per_source[self.in_sources] * self.in_weights
        sums = np.zeros(self.n_vertices, dtype=np.float64)
        starts = self.in_offsets[:-1]
        non_empty = self.in_offsets[:-1] < self.in_offsets[1:]
        if non_empty.any():
            reduced = np.add.reduceat(
                contributions, starts[non_empty]
            )
            sums[non_empty] = reduced
        return sums

    def _gather_chunk(
        self, per_source: np.ndarray, rng: tuple
    ) -> np.ndarray:
        """One vertex range's share of :meth:`gather_incoming`."""
        vs, ve = rng
        edge_lo = int(self.in_offsets[vs])
        edge_hi = int(self.in_offsets[ve])
        out = np.zeros(ve - vs, dtype=np.float64)
        if edge_hi == edge_lo:
            return out
        contributions = (
            per_source[self.in_sources[edge_lo:edge_hi]]
            * self.in_weights[edge_lo:edge_hi]
        )
        starts = self.in_offsets[vs:ve] - edge_lo
        non_empty = self.in_offsets[vs:ve] < self.in_offsets[vs + 1:ve + 1]
        if non_empty.any():
            out[non_empty] = np.add.reduceat(
                contributions, starts[non_empty]
            )
        return out
