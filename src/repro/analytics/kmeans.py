"""The physical k-Means operator (paper section 6.1).

Lloyd's algorithm with a lambda-parameterised distance metric
(section 7, Listing 3):

* two relational inputs — the data and the initial centers — arrive as
  arbitrary subqueries;
* each iteration assigns every tuple to its nearest center by evaluating
  the (compiled, vectorised) distance lambda once per center over the
  whole data batch — the lambda is fused into the inner loop, never
  interpreted per call;
* the update step accumulates per-cluster partial sums chunk-by-chunk and
  merges them, mirroring the thread-local aggregation + global merge
  structure of the paper (numpy vectorisation stands in for the threads);
* iteration stops when no tuple changes its cluster or after
  ``max_iterations``;
* the output relation holds the cluster id, the center coordinates, and
  the cluster size.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import AnalyticsError, BindError
from ..expr.bound import (
    BoundBinary,
    BoundColumnRef,
    BoundLambda,
)
from ..plan.logical import LogicalTableFunction, PlanColumn
from ..storage.column import Column, ColumnBatch
from ..types import BIGINT, DOUBLE, INTEGER
from .registry import OperatorDescriptor

#: Rows per "worker" chunk in the update step (emulated thread locality).
UPDATE_CHUNK_ROWS = 131_072


def default_distance_lambda(attrs: list[str]) -> BoundLambda:
    """The default variation point: squared Euclidean distance over the
    matched attributes, built as a bound expression tree (so the default
    and a user lambda compile identically)."""
    body = None
    for attr in attrs:
        a_ref = BoundColumnRef(f"a.{attr}", DOUBLE, f"a.{attr}")
        b_ref = BoundColumnRef(f"b.{attr}", DOUBLE, f"b.{attr}")
        diff = BoundBinary("-", a_ref, b_ref, DOUBLE)
        term = BoundBinary("*", diff, diff, DOUBLE)
        body = term if body is None else BoundBinary("+", body, term, DOUBLE)
    assert body is not None
    lam = BoundLambda(
        params=["a", "b"],
        body=body,
        param_attrs={"a": list(attrs), "b": list(attrs)},
    )
    # Marker letting the operator fuse the default variation point into
    # its tightest kernel — the analogue of HyPer generating optimal code
    # when no user lambda overrides the default (section 7).
    lam.is_default_euclidean = True  # type: ignore[attr-defined]
    return lam


class KMeansDescriptor(OperatorDescriptor):
    """``KMEANS((data), (centers) [, λ(a,b) distance] [, max_iter])``."""

    name = "kmeans"

    def bind(self, binder, func, parent_scope, ctes) -> LogicalTableFunction:
        data_plan = self._arg_subquery(
            binder, func, 0, parent_scope, ctes, "data"
        )
        centers_plan = self._arg_subquery(
            binder, func, 1, parent_scope, ctes, "initial centers"
        )
        data_cols = self._numeric_columns(data_plan, "KMEANS data")
        center_cols = self._numeric_columns(centers_plan, "KMEANS centers")
        if len(data_cols) != len(data_plan.output) or len(
            center_cols
        ) != len(centers_plan.output):
            raise BindError(
                "KMEANS inputs must project only the numeric attributes "
                "of interest"
            )
        if len(data_cols) != len(center_cols):
            raise BindError(
                f"KMEANS data has {len(data_cols)} dimensions but centers "
                f"have {len(center_cols)}"
            )

        attrs = [c.name for c in data_cols]
        param_schemas = [
            [(c.name, DOUBLE) for c in data_cols],
            [(c.name, DOUBLE) for c in center_cols],
        ]
        # Lambda parameter `b` exposes the *center's* attribute names so
        # λ(a, b) a.x - b.x works even if spellings differ per side; the
        # common case is identical names.
        param_schemas[1] = [(c.name, DOUBLE) for c in data_cols]

        distance = self._optional_lambda(binder, func, 2, param_schemas)
        next_arg = 3 if (len(func.args) > 2 and func.args[2].lambda_expr) \
            else 2
        max_iterations = self._scalar_arg(
            binder, func, next_arg, "max iterations", default=100
        )
        if not isinstance(max_iterations, int) or max_iterations < 1:
            raise BindError("KMEANS max iterations must be a positive int")

        if distance is None:
            distance = default_distance_lambda(attrs)

        output = [
            PlanColumn("cluster", binder.fresh_expr_slot(), INTEGER)
        ] + [
            PlanColumn(attr, binder.fresh_expr_slot(), DOUBLE)
            for attr in attrs
        ] + [
            PlanColumn("size", binder.fresh_expr_slot(), BIGINT)
        ]
        return LogicalTableFunction(
            name=self.name,
            inputs=[data_plan, centers_plan],
            lambdas={"distance": distance},
            params=[max_iterations, attrs],
            output=output,
        )

    def estimate_rows(self, node, input_estimates) -> float:
        # Contract: exactly k output rows (one per initial center).
        return max(input_estimates[1] if len(input_estimates) > 1 else 1.0,
                   1.0)

    def run(self, node, inputs, ctx, eval_ctx) -> ColumnBatch:
        data_batch, centers_batch = inputs
        max_iterations, attrs = node.params
        distance = node.lambdas["distance"]
        fused_default = getattr(distance, "is_default_euclidean", False)
        distance_fn = (
            None if fused_default else ctx.compiler.compile(distance)
        )

        data_names = data_batch.names()
        center_names = centers_batch.names()
        matrix = _as_matrix(data_batch, data_names, "KMEANS data")
        centers = _as_matrix(centers_batch, center_names, "KMEANS centers")
        if centers.shape[0] == 0:
            raise AnalyticsError("KMEANS requires at least one center")

        if fused_default:
            def metric(points: np.ndarray, center: np.ndarray) -> np.ndarray:
                diff = points - center
                return np.einsum("ij,ij->i", diff, diff)
        else:
            def metric(points: np.ndarray, center: np.ndarray) -> np.ndarray:
                n = points.shape[0]
                columns: dict[str, Column] = {}
                a_attrs = distance.param_attrs[distance.params[0]]
                b_attrs = distance.param_attrs[distance.params[1]]
                for j, attr in enumerate(a_attrs):
                    columns[f"{distance.params[0]}.{attr}"] = Column(
                        points[:, j], DOUBLE
                    )
                for j, attr in enumerate(b_attrs):
                    columns[f"{distance.params[1]}.{attr}"] = Column(
                        np.full(n, center[j]), DOUBLE
                    )
                result = distance_fn(ColumnBatch(columns), eval_ctx)
                return result.values.astype(np.float64, copy=False)

        pool = getattr(ctx, "pool", None)
        if pool is not None and not fused_default:
            from ..exec.parallel import _parallel_safe

            # User lambdas evaluate through the shared EvalContext;
            # only subquery-/UDF-free bodies may run on workers.
            if not _parallel_safe(distance.body):
                pool = None
        governor = getattr(ctx, "governor", None)
        reserved = 0
        if governor is not None:
            reserved = governor.reserve(
                int(matrix.nbytes) + int(centers.nbytes), "kmeans_matrix"
            )
        rounds: list[dict] = []
        try:
            centers_out, assignment, sizes, iters = lloyd_kmeans(
                matrix, centers, metric, max_iterations,
                telemetry=rounds, pool=pool, governor=governor,
            )
        finally:
            if governor is not None:
                governor.release(reserved)
        ctx.stats.iterations += iters
        ctx.telemetry["kmeans"] = {
            "iterations": iters,
            "inertia": [r["inertia"] for r in rounds],
            "center_shift": [r["center_shift"] for r in rounds],
        }
        return self._output_batch(attrs, centers_out, sizes)

    @staticmethod
    def _output_batch(
        attrs: list[str], centers_out: np.ndarray, sizes: np.ndarray
    ) -> ColumnBatch:
        columns = {
            "cluster": Column(
                np.arange(centers_out.shape[0], dtype=np.int32), INTEGER
            )
        }
        for j, attr in enumerate(attrs):
            columns[attr] = Column(centers_out[:, j].copy(), DOUBLE)
        columns["size"] = Column(sizes.astype(np.int64), BIGINT)
        return ColumnBatch(columns)


def _as_matrix(
    batch: ColumnBatch, names: list[str], what: str
) -> np.ndarray:
    columns = []
    for name in names:
        col = batch[name]
        if col.null_count():
            raise AnalyticsError(f"{what} must not contain NULLs")
        columns.append(col.values.astype(np.float64, copy=False))
    if not columns:
        return np.zeros((0, 0), dtype=np.float64)
    return np.column_stack(columns)


def lloyd_kmeans(
    matrix: np.ndarray,
    centers: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], np.ndarray],
    max_iterations: int,
    telemetry: Optional[list] = None,
    pool=None,
    governor=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Core Lloyd iteration shared by the SQL operator and the Python API.

    ``metric(points, center)`` returns per-point distances to one center.
    ``telemetry``, when given, receives one dict per iteration with the
    round's ``inertia`` (sum of each point's distance to its assigned
    center, under ``metric``) and ``center_shift`` (largest L2 move of
    any center in the update step) — the convergence series the paper's
    section 8.1 wall-time claims rest on.

    ``pool`` (a :class:`repro.exec.parallel.WorkerPool`) runs the
    assign-and-partial-sum chunks on worker threads. Chunk boundaries
    are worker-independent and partials merge in chunk order, so the
    centers, assignment, and inertia series are bit-identical for any
    worker count (and to ``pool=None``).
    Returns (centers, assignment, cluster_sizes, iterations_run).
    """
    n = matrix.shape[0]
    k = centers.shape[0]
    d = matrix.shape[1]
    centers = centers.astype(np.float64, copy=True)
    assignment = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return centers, assignment, np.zeros(k, dtype=np.int64), 0

    # One cache-sized chunk at a time ("morsel" processing): each chunk
    # plays the role of one worker's share in the paper's design —
    # assign its tuples, accumulate local partial sums, then merge
    # globally in chunk order.
    chunk_rows = min(UPDATE_CHUNK_ROWS, max(n, 1))
    ranges = [
        (start, min(start + chunk_rows, n))
        for start in range(0, n, chunk_rows)
    ]
    want_inertia = telemetry is not None

    def assign_chunk(rng: tuple) -> tuple:
        """One worker's share of a round: assign the chunk's tuples to
        the (frozen) centers and compute the chunk-local partial sums.
        Reads the previous round's ``assignment`` slice; the
        coordinator applies writes only after every chunk returns."""
        start, stop = rng
        block = matrix[start:stop]
        dist_block = np.empty((stop - start, k), dtype=np.float64)
        for j in range(k):
            dist_block[:, j] = metric(block, centers[j])
        local_assign = np.argmin(dist_block, axis=1)
        local_inertia = 0.0
        if want_inertia:
            local_inertia = float(
                dist_block[
                    np.arange(stop - start), local_assign
                ].sum()
            )
        local_counts = np.bincount(local_assign, minlength=k)
        local_sums = np.empty((k, d), dtype=np.float64)
        for dim in range(d):
            local_sums[:, dim] = np.bincount(
                local_assign, weights=block[:, dim], minlength=k
            )
        local_changed = bool(
            (local_assign != assignment[start:stop]).any()
        )
        return (
            local_assign, local_counts, local_sums,
            local_inertia, local_changed,
        )

    iterations = 0
    for _round in range(max_iterations):
        if governor is not None:
            # Per-round checkpoint: a cancel or deadline aborts within
            # one assignment round.
            governor.check("kmeans_round")
        iterations += 1
        if pool is not None:
            chunk_results = pool.map_ordered(assign_chunk, ranges)
        else:
            chunk_results = [assign_chunk(rng) for rng in ranges]
        changed = False
        inertia = 0.0
        sums = np.zeros_like(centers)
        counts = np.zeros(k, dtype=np.int64)
        for rng, result in zip(ranges, chunk_results):
            start, stop = rng
            (
                local_assign, local_counts, local_sums,
                local_inertia, local_changed,
            ) = result
            assignment[start:stop] = local_assign
            counts += local_counts
            sums += local_sums
            inertia += local_inertia
            changed = changed or local_changed
        non_empty = counts > 0
        previous_centers = centers.copy() if telemetry is not None else None
        centers[non_empty] = (
            sums[non_empty] / counts[non_empty, None]
        )
        if telemetry is not None:
            shift = float(
                np.sqrt(
                    ((centers - previous_centers) ** 2).sum(axis=1)
                ).max()
            )
            telemetry.append(
                {"inertia": inertia, "center_shift": shift}
            )
        if not changed:
            break
    sizes = np.bincount(assignment, minlength=k)
    return centers, assignment, sizes, iterations


def kmeans_plusplus_init(
    points: np.ndarray, k: int, seed: int = 0
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii): pick initial centers
    with probability proportional to squared distance from the centers
    chosen so far. The paper's experiments use plain random selection
    for cross-system comparability (section 8.1.1); this is the better
    initialization strategy offered as the operator's alternative.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise AnalyticsError("kmeans++ expects a non-empty 2-D array")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise AnalyticsError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    centers[0] = points[rng.integers(n)]
    closest = np.full(n, np.inf)
    for i in range(1, k):
        diff = points - centers[i - 1]
        np.minimum(
            closest, np.einsum("ij,ij->i", diff, diff), out=closest
        )
        total = closest.sum()
        if total <= 0.0:
            # All remaining points coincide with chosen centers.
            centers[i:] = centers[i - 1]
            break
        probabilities = closest / total
        centers[i] = points[rng.choice(n, p=probabilities)]
    return centers


def kmeans(
    points: np.ndarray,
    initial_centers: np.ndarray,
    max_iterations: int = 100,
    metric: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    telemetry: Optional[list] = None,
    pool=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Library-level k-Means over numpy arrays (no SQL involved).

    ``metric`` defaults to squared Euclidean distance; ``telemetry``
    receives one per-iteration convergence dict and ``pool`` an optional
    :class:`repro.exec.parallel.WorkerPool` (see :func:`lloyd_kmeans`).
    Returns (centers, assignment, sizes, iterations)."""
    points = np.asarray(points, dtype=np.float64)
    initial_centers = np.asarray(initial_centers, dtype=np.float64)
    if points.ndim != 2 or initial_centers.ndim != 2:
        raise AnalyticsError("kmeans expects 2-D arrays")
    if points.shape[1] != initial_centers.shape[1]:
        raise AnalyticsError("points/centers dimensionality mismatch")
    if max_iterations < 1:
        raise AnalyticsError("max_iterations must be positive")
    if metric is None:
        def metric(pts: np.ndarray, center: np.ndarray) -> np.ndarray:
            diff = pts - center
            return np.einsum("ij,ij->i", diff, diff)
    return lloyd_kmeans(
        points, initial_centers, metric, max_iterations,
        telemetry=telemetry, pool=pool,
    )
