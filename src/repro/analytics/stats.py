"""Statistical building-block operators (paper section 6.2).

The paper factors "generation of additional statistical measures" into
operators reusable across algorithms (Naive Bayes, k-Means, ...). Two are
exposed at the SQL level:

* ``COLUMN_STATS((data))`` — per numeric column: count, mean, stddev,
  min, max.
* ``GROUPED_STATS((SELECT key, f1, ..., fd ...))`` — the same moments per
  (group key, attribute); the exact state Naive Bayes training needs
  (N, Σa, Σa² per class and attribute).

The numpy kernel :func:`grouped_moments` is shared with the Naive Bayes
operator.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalyticsError, BindError
from ..plan.logical import LogicalTableFunction, PlanColumn
from ..storage.column import Column, ColumnBatch
from ..types import BIGINT, DOUBLE, VARCHAR
from .registry import OperatorDescriptor


def _moment_partials(
    matrix: np.ndarray, codes: np.ndarray, n_groups: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-group count / sum / square-sum of one row range."""
    d = matrix.shape[1]
    counts = np.bincount(codes, minlength=n_groups).astype(np.float64)
    sums = np.zeros((n_groups, d))
    sumsq = np.zeros((n_groups, d))
    for j in range(d):
        column = matrix[:, j]
        sums[:, j] = np.bincount(codes, weights=column, minlength=n_groups)
        sumsq[:, j] = np.bincount(
            codes, weights=column * column, minlength=n_groups
        )
    return counts, sums, sumsq


def grouped_moments(
    matrix: np.ndarray,
    codes: np.ndarray,
    n_groups: int,
    pool=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-group count, mean, and (population) standard deviation for
    every column of ``matrix``, from one pass of sums and square sums.

    With a ``pool`` (any :class:`repro.exec.parallel.WorkerPool`,
    including a serial one), the pass chunks over fixed row ranges —
    per-class partial counts/sums computed per chunk, folded in chunk
    order — so results are bit-identical for every worker count.
    ``pool=None`` keeps the single whole-array pass.

    Returns (counts (g,), means (g, d), stds (g, d)).
    """
    n, d = matrix.shape
    ranges = None
    if pool is not None:
        from ..exec.parallel import PARTIAL_CHUNK_ROWS, morsel_ranges

        ranges = morsel_ranges(n, PARTIAL_CHUNK_ROWS)
    if ranges is not None and len(ranges) > 1:
        parts = pool.map_ordered(
            lambda rng: _moment_partials(
                matrix[rng[0]:rng[1]], codes[rng[0]:rng[1]], n_groups
            ),
            ranges,
        )
        counts = np.zeros(n_groups, dtype=np.float64)
        sums = np.zeros((n_groups, d))
        sumsq = np.zeros((n_groups, d))
        for part_counts, part_sums, part_sumsq in parts:
            counts += part_counts
            sums += part_sums
            sumsq += part_sumsq
    else:
        counts, sums, sumsq = _moment_partials(matrix, codes, n_groups)
    safe = np.where(counts == 0, 1.0, counts)
    means = sums / safe[:, None]
    variances = np.clip(
        sumsq / safe[:, None] - means * means, 0.0, None
    )
    stds = np.sqrt(variances)
    return counts, means, stds


class ColumnStatsDescriptor(OperatorDescriptor):
    """``COLUMN_STATS((data))`` -> one row per numeric input column."""

    name = "column_stats"

    def bind(self, binder, func, parent_scope, ctes) -> LogicalTableFunction:
        data_plan = self._arg_subquery(
            binder, func, 0, parent_scope, ctes, "data"
        )
        numeric = self._numeric_columns(data_plan, "COLUMN_STATS data")
        if len(numeric) != len(data_plan.output):
            raise BindError(
                "COLUMN_STATS input must project only numeric columns"
            )
        output = [
            PlanColumn("attribute", binder.fresh_expr_slot(), VARCHAR),
            PlanColumn("count", binder.fresh_expr_slot(), BIGINT),
            PlanColumn("mean", binder.fresh_expr_slot(), DOUBLE),
            PlanColumn("stddev", binder.fresh_expr_slot(), DOUBLE),
            PlanColumn("min", binder.fresh_expr_slot(), DOUBLE),
            PlanColumn("max", binder.fresh_expr_slot(), DOUBLE),
        ]
        return LogicalTableFunction(
            name=self.name,
            inputs=[data_plan],
            lambdas={},
            params=[[c.name for c in numeric]],
            output=output,
        )

    def estimate_rows(self, node, input_estimates) -> float:
        return float(len(node.params[0]))

    def run(self, node, inputs, ctx, eval_ctx) -> ColumnBatch:
        (batch,) = inputs
        (attrs,) = node.params
        n = len(batch)
        rows = {
            "attribute": [],
            "count": [],
            "mean": [],
            "stddev": [],
            "min": [],
            "max": [],
        }
        for name in attrs:
            col = batch[name]
            validity = col.validity()
            values = col.values[validity].astype(np.float64)
            rows["attribute"].append(name)
            rows["count"].append(len(values))
            if len(values) == 0:
                rows["mean"].append(None)
                rows["stddev"].append(None)
                rows["min"].append(None)
                rows["max"].append(None)
            else:
                rows["mean"].append(float(values.mean()))
                rows["stddev"].append(float(values.std()))
                rows["min"].append(float(values.min()))
                rows["max"].append(float(values.max()))
        return ColumnBatch(
            {
                "attribute": Column.from_values(rows["attribute"], VARCHAR),
                "count": Column.from_values(rows["count"], BIGINT),
                "mean": Column.from_values(rows["mean"], DOUBLE),
                "stddev": Column.from_values(rows["stddev"], DOUBLE),
                "min": Column.from_values(rows["min"], DOUBLE),
                "max": Column.from_values(rows["max"], DOUBLE),
            }
        )


class GroupedStatsDescriptor(OperatorDescriptor):
    """``GROUPED_STATS((SELECT key, f1, ..., fd ...))`` -> per (key,
    attribute) count/mean/stddev. First column is the group key."""

    name = "grouped_stats"

    def bind(self, binder, func, parent_scope, ctes) -> LogicalTableFunction:
        data_plan = self._arg_subquery(
            binder, func, 0, parent_scope, ctes, "keyed data"
        )
        if len(data_plan.output) < 2:
            raise BindError(
                "GROUPED_STATS needs a key column plus attributes"
            )
        key_col = data_plan.output[0]
        for col in data_plan.output[1:]:
            if not col.sql_type.is_numeric:
                raise BindError(
                    f"GROUPED_STATS attribute {col.name!r} must be numeric"
                )
        attrs = [c.name for c in data_plan.output[1:]]
        output = [
            PlanColumn("key", binder.fresh_expr_slot(), key_col.sql_type),
            PlanColumn("attribute", binder.fresh_expr_slot(), VARCHAR),
            PlanColumn("count", binder.fresh_expr_slot(), BIGINT),
            PlanColumn("mean", binder.fresh_expr_slot(), DOUBLE),
            PlanColumn("stddev", binder.fresh_expr_slot(), DOUBLE),
        ]
        return LogicalTableFunction(
            name=self.name,
            inputs=[data_plan],
            lambdas={},
            params=[attrs, key_col.sql_type],
            output=output,
        )

    def estimate_rows(self, node, input_estimates) -> float:
        return 8.0 * max(len(node.params[0]), 1)

    def run(self, node, inputs, ctx, eval_ctx) -> ColumnBatch:
        from ..exec.common import factorize

        (batch,) = inputs
        attrs, key_type = node.params
        names = batch.names()
        key_col = batch[names[0]]
        if key_col.null_count():
            raise AnalyticsError("GROUPED_STATS keys must not be NULL")
        codes, n_groups = factorize([key_col])
        if n_groups == 0:
            raise AnalyticsError("GROUPED_STATS requires at least one row")
        matrix_cols = []
        for name in names[1:]:
            col = batch[name]
            if col.null_count():
                raise AnalyticsError(
                    f"GROUPED_STATS attribute {name!r} must not be NULL"
                )
            matrix_cols.append(col.values.astype(np.float64, copy=False))
        matrix = np.column_stack(matrix_cols)
        counts, means, stds = grouped_moments(
            matrix, codes, n_groups, pool=getattr(ctx, "pool", None)
        )

        from ..exec.common import group_representatives

        reps = group_representatives(codes, n_groups)
        d = len(attrs)
        group_rows = np.repeat(np.arange(n_groups), d)
        key_values = [
            key_col.value_at(int(reps[g])) for g in group_rows
        ]
        return ColumnBatch(
            {
                "key": Column.from_values(key_values, key_type),
                "attribute": Column.from_values(
                    [attrs[i % d] for i in range(n_groups * d)], VARCHAR
                ),
                "count": Column.from_values(
                    [int(counts[g]) for g in group_rows], BIGINT
                ),
                "mean": Column(means.reshape(-1), DOUBLE),
                "stddev": Column(stds.reshape(-1), DOUBLE),
            }
        )
