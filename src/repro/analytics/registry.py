"""The analytics operator registry.

Each operator is an :class:`OperatorDescriptor` that knows how to *bind*
its table-function call (validate arguments, bind input subqueries and
lambdas, compute the output schema) and how to *run* (consume
materialised inputs, produce an output batch). The optimizer consults
:meth:`OperatorDescriptor.estimate_rows` — the "the query optimizer knows
their exact properties" point of section 4.3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import BindError
from ..expr.bound import BoundLambda
from ..plan.logical import LogicalPlan, LogicalTableFunction, PlanColumn
from ..storage.column import ColumnBatch
from ..types import SQLType

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.physical import ExecutionContext
    from ..expr.compiler import EvalContext
    from ..sql import ast
    from ..sql.binder import Binder


class OperatorDescriptor:
    """Base class for analytics operators pluggable into FROM."""

    name: str = ""

    def bind(
        self,
        binder: "Binder",
        func: "ast.TableFunction",
        parent_scope,
        ctes,
    ) -> LogicalTableFunction:
        raise NotImplementedError

    def run(
        self,
        node: LogicalTableFunction,
        inputs: list[ColumnBatch],
        ctx: "ExecutionContext",
        eval_ctx: "EvalContext",
    ) -> ColumnBatch:
        raise NotImplementedError

    def estimate_rows(
        self, node: LogicalTableFunction, input_estimates: list[float]
    ) -> float:
        """Cardinality contract; defaults to the first input's size."""
        return input_estimates[0] if input_estimates else 1.0

    # -- binding helpers shared by the concrete operators -------------------

    def _arg_subquery(
        self, binder, func, index: int, parent_scope, ctes, what: str
    ) -> LogicalPlan:
        if index >= len(func.args) or func.args[index].query is None:
            raise BindError(
                f"{self.name.upper()}() argument {index + 1} must be a "
                f"subquery ({what})"
            )
        return binder.bind_subquery_arg(
            func.args[index].query, parent_scope, ctes
        )

    def _optional_lambda(
        self,
        binder,
        func,
        index: int,
        param_schemas: list[list[tuple[str, SQLType]]],
    ) -> Optional[BoundLambda]:
        if index >= len(func.args):
            return None
        arg = func.args[index]
        if arg.lambda_expr is None:
            return None
        return binder.bind_lambda_arg(arg.lambda_expr, param_schemas)

    def _scalar_arg(
        self, binder, func, index: int, what: str, default=None
    ):
        if index >= len(func.args):
            if default is not None:
                return default
            raise BindError(
                f"{self.name.upper()}() is missing argument "
                f"{index + 1} ({what})"
            )
        arg = func.args[index]
        if arg.scalar is None:
            raise BindError(
                f"{self.name.upper()}() argument {index + 1} ({what}) "
                "must be a constant scalar"
            )
        return binder.constant_scalar(arg.scalar, what)

    def _numeric_columns(
        self, plan: LogicalPlan, what: str
    ) -> list[PlanColumn]:
        cols = [c for c in plan.output if c.sql_type.is_numeric]
        if not cols:
            raise BindError(f"{what} must have numeric columns")
        return cols


class OperatorRegistry:
    """Name -> descriptor lookup used by binder, optimizer, and executor."""

    def __init__(self) -> None:
        self._descriptors: dict[str, OperatorDescriptor] = {}

    def register(self, descriptor: OperatorDescriptor) -> None:
        if not descriptor.name:
            raise ValueError("descriptor must set a name")
        self._descriptors[descriptor.name.lower()] = descriptor

    def lookup(self, name: str) -> Optional[OperatorDescriptor]:
        return self._descriptors.get(name.lower())

    def names(self) -> list[str]:
        return sorted(self._descriptors)


def default_registry() -> OperatorRegistry:
    """A registry with every built-in analytics operator."""
    from .kmeans import KMeansDescriptor
    from .naive_bayes import (
        NaiveBayesPredictDescriptor,
        NaiveBayesTrainDescriptor,
    )
    from .pagerank import PageRankDescriptor
    from .stats import ColumnStatsDescriptor, GroupedStatsDescriptor

    registry = OperatorRegistry()
    registry.register(KMeansDescriptor())
    registry.register(PageRankDescriptor())
    registry.register(NaiveBayesTrainDescriptor())
    registry.register(NaiveBayesPredictDescriptor())
    registry.register(ColumnStatsDescriptor())
    registry.register(GroupedStatsDescriptor())
    return registry
