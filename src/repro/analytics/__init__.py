"""Layer-4 analytics operators (paper sections 6 and 7).

Physical analytics operators live in the same plan space as relational
operators: they take arbitrary subqueries as inputs, return relations,
declare cardinality contracts to the optimizer, and expose *variation
points* parameterised by SQL lambda expressions.

The default registry contains:

* ``KMEANS(data, centers [, λ(a,b) distance] [, max_iterations])``
* ``PAGERANK(edges, damping, epsilon [, max_iterations] [, λ(e) weight])``
* ``NAIVE_BAYES_TRAIN(labelled_data)``
* ``NAIVE_BAYES_PREDICT(model, data)``
* ``COLUMN_STATS(data)`` and ``GROUPED_STATS(data)`` — the shared
  statistics building blocks of section 6.2.
"""

from .registry import OperatorDescriptor, OperatorRegistry, default_registry
from .kmeans import KMeansDescriptor, kmeans, kmeans_plusplus_init
from .pagerank import PageRankDescriptor, pagerank
from .naive_bayes import (
    NaiveBayesModel,
    NaiveBayesPredictDescriptor,
    NaiveBayesTrainDescriptor,
    naive_bayes_predict,
    naive_bayes_train,
)
from .stats import ColumnStatsDescriptor, GroupedStatsDescriptor
from .csr import CSRGraph

__all__ = [
    "OperatorDescriptor",
    "OperatorRegistry",
    "default_registry",
    "KMeansDescriptor",
    "kmeans",
    "kmeans_plusplus_init",
    "PageRankDescriptor",
    "pagerank",
    "NaiveBayesModel",
    "NaiveBayesTrainDescriptor",
    "NaiveBayesPredictDescriptor",
    "naive_bayes_train",
    "naive_bayes_predict",
    "ColumnStatsDescriptor",
    "GroupedStatsDescriptor",
    "CSRGraph",
]
