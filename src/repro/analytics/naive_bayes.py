"""Gaussian Naive Bayes as two physical operators (paper section 6.2).

``NAIVE_BAYES_TRAIN((SELECT label, f1, ..., fd FROM ...))`` — a pipeline
breaker that consumes the labelled input maintaining, per class, the
tuple count N, the per-attribute sums Σa and Σa² (never the tuples
themselves — exactly the per-thread hash-table state of the paper), and
from them computes

* the Laplace-smoothed a-priori probability PR(c) = (|c| + 1)/(|D| + |C|),
* the mean and standard deviation per class and attribute.

The model is emitted as an ordinary relation (one row per class ×
attribute), the paper's answer to "the model does not match relational
entities": it composes with any SQL post-processing and can be stored in
a table.

``NAIVE_BAYES_PREDICT((model), (SELECT f1, ..., fd FROM ...))`` applies
the model: per row, the class maximising
``log PR(c) + Σ_a log N(x_a; mean, std)``. Output: the data columns plus
the predicted ``label``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalyticsError, BindError
from ..plan.logical import LogicalTableFunction, PlanColumn
from ..storage.column import Column, ColumnBatch
from ..types import BIGINT, DOUBLE, SQLType, VARCHAR
from .registry import OperatorDescriptor
from .stats import grouped_moments

#: Variance floor guarding degenerate (constant) attributes.
MIN_VARIANCE = 1e-9


@dataclass
class NaiveBayesModel:
    """In-memory model used by the Python API and the predict operator."""

    classes: np.ndarray  # original class labels (object or int array)
    attributes: list[str]
    priors: np.ndarray  # (n_classes,)
    means: np.ndarray  # (n_classes, n_attrs)
    stds: np.ndarray  # (n_classes, n_attrs)
    counts: np.ndarray  # (n_classes,)

    def log_likelihood(self, matrix: np.ndarray) -> np.ndarray:
        """(n_rows, n_classes) joint log probabilities."""
        n, d = matrix.shape
        k = len(self.classes)
        if d != len(self.attributes):
            raise AnalyticsError(
                f"model has {len(self.attributes)} attributes, data has {d}"
            )
        scores = np.tile(np.log(self.priors), (n, 1))
        for c in range(k):
            mean = self.means[c]
            std = self.stds[c]
            var = np.maximum(std * std, MIN_VARIANCE)
            diff = matrix - mean
            scores[:, c] += np.sum(
                -0.5 * (np.log(2.0 * np.pi * var) + diff * diff / var),
                axis=1,
            )
        return scores

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Most probable class label per row."""
        scores = self.log_likelihood(np.asarray(matrix, dtype=np.float64))
        return self.classes[np.argmax(scores, axis=1)]


def naive_bayes_train(
    labels: np.ndarray,
    matrix: np.ndarray,
    attributes: list[str] | None = None,
    pool=None,
) -> NaiveBayesModel:
    """Library-level training over numpy arrays.

    ``labels`` is 1-D (any hashable dtype); ``matrix`` is (n, d)
    numeric. ``pool`` chunks the per-class partial counts/sums across
    workers (merged in fixed chunk order — see
    :func:`repro.analytics.stats.grouped_moments`).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or len(labels) != matrix.shape[0]:
        raise AnalyticsError("labels/matrix shape mismatch")
    if matrix.shape[0] == 0:
        raise AnalyticsError("cannot train on an empty dataset")
    classes, codes = np.unique(np.asarray(labels), return_inverse=True)
    k = len(classes)
    n = matrix.shape[0]
    counts, means, stds = grouped_moments(matrix, codes, k, pool=pool)
    priors = (counts + 1.0) / (n + k)  # PR(c) = (|c|+1)/(|D|+|C|)
    if attributes is None:
        attributes = [f"a{i}" for i in range(matrix.shape[1])]
    return NaiveBayesModel(
        classes=classes,
        attributes=list(attributes),
        priors=priors,
        means=means,
        stds=stds,
        counts=counts.astype(np.int64),
    )


def naive_bayes_predict(
    model: NaiveBayesModel, matrix: np.ndarray
) -> np.ndarray:
    """Library-level prediction; see :meth:`NaiveBayesModel.predict`."""
    return model.predict(matrix)


class NaiveBayesTrainDescriptor(OperatorDescriptor):
    """First input column = class label; remaining numeric = attributes."""

    name = "naive_bayes_train"

    def bind(self, binder, func, parent_scope, ctes) -> LogicalTableFunction:
        data_plan = self._arg_subquery(
            binder, func, 0, parent_scope, ctes, "labelled training data"
        )
        if len(data_plan.output) < 2:
            raise BindError(
                "NAIVE_BAYES_TRAIN needs a label column plus at least one "
                "attribute"
            )
        label_col = data_plan.output[0]
        for col in data_plan.output[1:]:
            if not col.sql_type.is_numeric:
                raise BindError(
                    f"NAIVE_BAYES_TRAIN attribute {col.name!r} must be "
                    f"numeric, got {col.sql_type}"
                )
        attrs = [c.name for c in data_plan.output[1:]]
        output = [
            PlanColumn("class", binder.fresh_expr_slot(), label_col.sql_type),
            PlanColumn("attribute", binder.fresh_expr_slot(), VARCHAR),
            PlanColumn("prior", binder.fresh_expr_slot(), DOUBLE),
            PlanColumn("mean", binder.fresh_expr_slot(), DOUBLE),
            PlanColumn("stddev", binder.fresh_expr_slot(), DOUBLE),
            PlanColumn("count", binder.fresh_expr_slot(), BIGINT),
        ]
        return LogicalTableFunction(
            name=self.name,
            inputs=[data_plan],
            lambdas={},
            params=[attrs, label_col.sql_type],
            output=output,
        )

    def estimate_rows(self, node, input_estimates) -> float:
        # Contract: |C| * d rows; |C| is unknown, assume a small constant.
        attrs = node.params[0]
        return 4.0 * max(len(attrs), 1)

    def run(self, node, inputs, ctx, eval_ctx) -> ColumnBatch:
        (data_batch,) = inputs
        attrs, label_type = node.params
        names = data_batch.names()
        label_col = data_batch[names[0]]
        if label_col.null_count():
            raise AnalyticsError("training labels must not be NULL")
        matrix = _matrix_from(data_batch, names[1:])
        # Numeric labels stay in their numpy representation (the fast
        # path); only VARCHAR labels take the Python-object route.
        if label_col.values.dtype == object:
            labels = np.asarray(label_col.to_pylist(), dtype=object)
        else:
            labels = label_col.values
        model = naive_bayes_train(
            labels, matrix, attributes=attrs,
            pool=getattr(ctx, "pool", None),
        )
        ctx.telemetry["naive_bayes"] = {
            "classes": [str(c) for c in model.classes],
            "class_counts": model.counts.tolist(),
            "priors": model.priors.tolist(),
        }
        k = len(model.classes)
        d = len(attrs)
        class_rows = np.repeat(np.arange(k), d)
        columns = {
            "class": Column.from_values(
                [model.classes[i] for i in class_rows], label_type
            ),
            "attribute": Column.from_values(
                [attrs[i % d] for i in range(k * d)], VARCHAR
            ),
            "prior": Column(model.priors[class_rows], DOUBLE),
            "mean": Column(model.means.reshape(-1), DOUBLE),
            "stddev": Column(model.stds.reshape(-1), DOUBLE),
            "count": Column(model.counts[class_rows], BIGINT),
        }
        return ColumnBatch(columns)


class NaiveBayesPredictDescriptor(OperatorDescriptor):
    """``NAIVE_BAYES_PREDICT((model), (data))`` — model rows as produced
    by the training operator; data columns are matched to model
    attributes by name."""

    name = "naive_bayes_predict"

    def bind(self, binder, func, parent_scope, ctes) -> LogicalTableFunction:
        model_plan = self._arg_subquery(
            binder, func, 0, parent_scope, ctes, "model"
        )
        data_plan = self._arg_subquery(
            binder, func, 1, parent_scope, ctes, "data to classify"
        )
        model_names = [c.name.lower() for c in model_plan.output]
        required = ["class", "attribute", "prior", "mean", "stddev"]
        for needed in required:
            if needed not in model_names:
                raise BindError(
                    f"NAIVE_BAYES_PREDICT model is missing column "
                    f"{needed!r} (expected the NAIVE_BAYES_TRAIN layout)"
                )
        for col in data_plan.output:
            if not col.sql_type.is_numeric:
                raise BindError(
                    f"NAIVE_BAYES_PREDICT data column {col.name!r} must "
                    "be numeric"
                )
        label_type = model_plan.output[model_names.index("class")].sql_type
        output = [
            PlanColumn(c.name, binder.fresh_expr_slot(), c.sql_type)
            for c in data_plan.output
        ] + [PlanColumn("label", binder.fresh_expr_slot(), label_type)]
        return LogicalTableFunction(
            name=self.name,
            inputs=[model_plan, data_plan],
            lambdas={},
            params=[label_type],
            output=output,
        )

    def estimate_rows(self, node, input_estimates) -> float:
        # Contract: exactly the data input's cardinality.
        return input_estimates[1] if len(input_estimates) > 1 else 1.0

    def run(self, node, inputs, ctx, eval_ctx) -> ColumnBatch:
        model_batch, data_batch = inputs
        (label_type,) = node.params
        model = _model_from_relation(model_batch, label_type)
        data_names = data_batch.names()
        ordered = _align_attributes(model, data_names)
        matrix = _matrix_from(data_batch, ordered)
        predictions = model.predict(matrix)
        labels, label_counts = np.unique(
            np.asarray(predictions, dtype=object), return_counts=True
        )
        ctx.telemetry["naive_bayes_predict"] = {
            "classes": [str(c) for c in labels],
            "predicted_counts": label_counts.tolist(),
        }
        columns = {
            name: data_batch[name] for name in data_names
        }
        columns["label"] = Column.from_values(
            list(predictions), label_type
        )
        return ColumnBatch(columns)


def _matrix_from(batch: ColumnBatch, names: list[str]) -> np.ndarray:
    columns = []
    for name in names:
        col = batch[name]
        if col.null_count():
            raise AnalyticsError(
                f"attribute {name!r} must not contain NULLs"
            )
        columns.append(col.values.astype(np.float64, copy=False))
    if not columns:
        raise AnalyticsError("no attribute columns")
    return np.column_stack(columns)


def _model_from_relation(
    batch: ColumnBatch, label_type: SQLType
) -> NaiveBayesModel:
    lowered = {name.lower(): name for name in batch.names()}
    classes_col = batch[lowered["class"]]
    attr_col = batch[lowered["attribute"]]
    prior_col = batch[lowered["prior"]]
    mean_col = batch[lowered["mean"]]
    std_col = batch[lowered["stddev"]]

    class_values = classes_col.to_pylist()
    attr_values = attr_col.to_pylist()
    classes: list[object] = []
    attributes: list[str] = []
    for value in class_values:
        if value not in classes:
            classes.append(value)
    for value in attr_values:
        if value not in attributes:
            attributes.append(value)
    k, d = len(classes), len(attributes)
    if k == 0 or d == 0 or len(class_values) != k * d:
        raise AnalyticsError(
            "malformed model relation: expected |classes| x |attributes| "
            f"rows, got {len(class_values)}"
        )
    class_index = {c: i for i, c in enumerate(classes)}
    attr_index = {a: i for i, a in enumerate(attributes)}
    priors = np.zeros(k)
    means = np.zeros((k, d))
    stds = np.zeros((k, d))
    for row in range(len(class_values)):
        ci = class_index[class_values[row]]
        ai = attr_index[attr_values[row]]
        priors[ci] = prior_col.value_at(row)
        means[ci, ai] = mean_col.value_at(row)
        stds[ci, ai] = std_col.value_at(row)
    return NaiveBayesModel(
        classes=np.asarray(classes, dtype=object),
        attributes=attributes,
        priors=priors,
        means=means,
        stds=stds,
        counts=np.zeros(k, dtype=np.int64),
    )


def _align_attributes(
    model: NaiveBayesModel, data_names: list[str]
) -> list[str]:
    """Order the data columns to match the model's attribute order."""
    lowered = {name.lower(): name for name in data_names}
    ordered = []
    for attr in model.attributes:
        name = lowered.get(str(attr).lower())
        if name is None:
            raise AnalyticsError(
                f"data is missing model attribute {attr!r}"
            )
        ordered.append(name)
    return ordered
