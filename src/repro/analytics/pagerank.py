"""The physical PageRank operator (paper section 6.3).

``PAGERANK((edges), damping, epsilon [, max_iterations] [, λ(e) weight])``

The operator builds a temporary CSR index with densely re-labelled
vertex ids (one array read per neighbour rank access), iterates the
sparse matrix-vector multiplication keeping only the current and
previous rank arrays, aggregates the per-round rank change, stops when
the change drops to ``epsilon`` or the iteration cap is reached, and
finally reverse-maps internal ids to the original vertex ids.

An optional lambda over the edge tuple defines edge weights (the paper's
example of a PageRank variation point, section 4.3): contributions are
proportional to ``weight / total outgoing weight``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AnalyticsError, BindError
from ..expr import bound as b
from ..plan import logical as lp
from ..plan.logical import LogicalTableFunction, PlanColumn
from ..storage.column import Column, ColumnBatch
from ..types import BIGINT, DOUBLE
from .csr import CSRGraph, csr_cache_lookup, csr_cache_store
from .registry import OperatorDescriptor

DEFAULT_MAX_ITERATIONS = 100


class PageRankDescriptor(OperatorDescriptor):
    name = "pagerank"

    def bind(self, binder, func, parent_scope, ctes) -> LogicalTableFunction:
        edges_plan = self._arg_subquery(
            binder, func, 0, parent_scope, ctes, "edges"
        )
        if len(edges_plan.output) < 2:
            raise BindError(
                "PAGERANK edges must have at least (source, target)"
            )
        for col in edges_plan.output[:2]:
            if not col.sql_type.is_integral:
                raise BindError(
                    "PAGERANK vertex id columns must be integers, got "
                    f"{col.sql_type} for {col.name!r}"
                )
        damping = self._scalar_arg(binder, func, 1, "damping factor")
        epsilon = self._scalar_arg(binder, func, 2, "epsilon")
        damping = float(damping)
        epsilon = float(epsilon)
        if not 0.0 <= damping <= 1.0:
            raise BindError("PAGERANK damping factor must be in [0, 1]")
        if epsilon < 0.0:
            raise BindError("PAGERANK epsilon must be non-negative")

        max_iterations = DEFAULT_MAX_ITERATIONS
        weight_lambda = None
        index = 3
        if index < len(func.args) and func.args[index].scalar is not None:
            max_iterations = self._scalar_arg(
                binder, func, index, "max iterations"
            )
            if not isinstance(max_iterations, int) or max_iterations < 1:
                raise BindError(
                    "PAGERANK max iterations must be a positive integer"
                )
            index += 1
        if index < len(func.args):
            edge_schema = [
                (c.name, c.sql_type) for c in edges_plan.output
            ]
            weight_lambda = self._optional_lambda(
                binder, func, index, [edge_schema]
            )
            if weight_lambda is None:
                raise BindError(
                    f"PAGERANK: unexpected argument {index + 1}"
                )

        lambdas = {}
        if weight_lambda is not None:
            lambdas["weight"] = weight_lambda
        output = [
            PlanColumn("vertex", binder.fresh_expr_slot(), BIGINT),
            PlanColumn("rank", binder.fresh_expr_slot(), DOUBLE),
        ]
        return LogicalTableFunction(
            name=self.name,
            inputs=[edges_plan],
            lambdas=lambdas,
            params=[damping, epsilon, max_iterations],
            output=output,
        )

    def estimate_rows(self, node, input_estimates) -> float:
        # Contract: one row per distinct vertex; bounded by 2x edge count.
        edges = input_estimates[0] if input_estimates else 1.0
        return max(min(edges * 2.0, edges + 1.0), 1.0)

    @staticmethod
    def _csr_cache_key(node, ctx) -> Optional[tuple]:
        """A cache key for the edges input's CSR index, or None when the
        input is not a plain base-table read (or the weight lambda is
        value-dependent / unfingerprintable).

        Cacheable shapes: a bare scan, or a projection of unmodified
        columns over one — exactly the cases where the materialised
        edge batch is a pure function of one immutable
        :class:`~repro.storage.table.TableData` version."""
        plan = node.inputs[0]
        if isinstance(plan, lp.LogicalProject) and isinstance(
            plan.child, lp.LogicalScan
        ):
            slot_to_name = {c.slot: c.name for c in plan.child.output}
            names = []
            for expr in plan.exprs:
                if not isinstance(expr, b.BoundColumnRef):
                    return None
                name = slot_to_name.get(expr.slot)
                if name is None:
                    return None
                names.append(name)
            table_name = plan.child.table_name
        elif isinstance(plan, lp.LogicalScan):
            names = [c.name for c in plan.output]
            table_name = plan.table_name
        else:
            return None
        weight_key = None
        weight_lambda = node.lambdas.get("weight")
        if weight_lambda is not None:
            from ..expr.compiler import kernel_fingerprint

            body_fp = kernel_fingerprint(weight_lambda.body)
            if body_fp is None:
                return None
            # Cached weights are *values*, so a body reading outer
            # parameters would pin stale numbers into the graph.
            stack = [weight_lambda.body]
            while stack:
                sub = stack.pop()
                if isinstance(sub, b.BoundParam):
                    return None
                stack.extend(sub.children())
            weight_key = (tuple(weight_lambda.params), body_fp)
        try:
            data = ctx.read_table(table_name)
        except Exception:  # noqa: BLE001 — e.g. working-table scopes
            return None
        return (data.version_token, tuple(names), weight_key)

    def run(self, node, inputs, ctx, eval_ctx) -> ColumnBatch:
        (edges_batch,) = inputs
        damping, epsilon, max_iterations = node.params
        names = edges_batch.names()

        graph = None
        cache_key = None
        if getattr(ctx, "hot_path", False):
            cache_key = self._csr_cache_key(node, ctx)
            if cache_key is not None:
                graph = csr_cache_lookup(cache_key)
                if ctx.metrics is not None:
                    name = (
                        "analytics_csr_cache_hits_total"
                        if graph is not None
                        else "analytics_csr_cache_misses_total"
                    )
                    ctx.metrics.counter(name).inc()

        if graph is None:
            src_col = edges_batch[names[0]]
            dst_col = edges_batch[names[1]]
            if src_col.null_count() or dst_col.null_count():
                raise AnalyticsError(
                    "PAGERANK edges must not contain NULLs"
                )
            src = src_col.values.astype(np.int64, copy=False)
            dst = dst_col.values.astype(np.int64, copy=False)

            weights = None
            weight_lambda = node.lambdas.get("weight")
            if weight_lambda is not None:
                weight_fn = ctx.compiler.compile(weight_lambda)
                param = weight_lambda.params[0]
                attrs = weight_lambda.param_attrs[param]
                lam_batch = ColumnBatch(
                    {
                        f"{param}.{attr}": edges_batch[name]
                        for attr, name in zip(attrs, names)
                    }
                )
                weight_col = weight_fn(lam_batch, eval_ctx)
                weights = weight_col.values.astype(
                    np.float64, copy=False
                )
                if weight_col.null_count() or (weights < 0).any():
                    raise AnalyticsError(
                        "PAGERANK edge weights must be non-negative and "
                        "non-NULL"
                    )

            graph = CSRGraph.from_edges(
                src, dst, weights,
                governor=getattr(ctx, "governor", None),
            )
            if cache_key is not None:
                csr_cache_store(cache_key, graph)
        governor = getattr(ctx, "governor", None)
        reserved = 0
        if governor is not None:
            reserved = governor.reserve(graph.nbytes, "pagerank_csr")
        residuals: list[float] = []
        try:
            ranks, iterations = pagerank_csr(
                graph, damping, epsilon, max_iterations,
                telemetry=residuals, pool=getattr(ctx, "pool", None),
                governor=governor,
            )
        finally:
            if governor is not None:
                governor.release(reserved)
        ctx.stats.iterations += iterations
        ctx.telemetry["pagerank"] = {
            "iterations": iterations,
            "residual_l1": residuals,
        }
        return ColumnBatch(
            {
                "vertex": Column(
                    graph.vertex_ids.astype(np.int64), BIGINT
                ),
                "rank": Column(ranks, DOUBLE),
            }
        )


def pagerank_csr(
    graph: CSRGraph,
    damping: float,
    epsilon: float,
    max_iterations: int,
    telemetry: Optional[list] = None,
    pool=None,
    governor=None,
) -> tuple[np.ndarray, int]:
    """Iterate PageRank over a CSR index.

    Only the current and previous rank arrays are live (the operator's
    non-appending state, contrast with the relational formulation).
    Dangling vertices redistribute their mass uniformly. Stops when the
    aggregated rank change ``max |r' - r|`` is <= epsilon, or at the
    iteration cap. ``telemetry``, when given, receives the per-round L1
    residual ``sum |r' - r|`` (the convergence series). ``pool`` runs
    the SpMV gather chunked across workers; chunk boundaries align with
    CSR segments, so ranks and residuals stay bit-identical for any
    worker count. Returns (ranks, iterations_run)."""
    n = graph.n_vertices
    if n == 0:
        return np.zeros(0, dtype=np.float64), 0
    ranks = np.full(n, 1.0 / n, dtype=np.float64)
    out_weight = graph.weighted_out_sums()
    dangling = out_weight == 0.0
    safe_out = np.where(dangling, 1.0, out_weight)
    base = (1.0 - damping) / n

    iterations = 0
    for _round in range(max_iterations):
        if governor is not None:
            # Per-round checkpoint: a cancel or deadline aborts within
            # one SpMV round.
            governor.check("pagerank_round")
        iterations += 1
        per_source = ranks / safe_out
        per_source[dangling] = 0.0
        new_ranks = base + damping * graph.gather_incoming(
            per_source, pool=pool
        )
        if dangling.any():
            new_ranks += damping * ranks[dangling].sum() / n
        change = np.abs(new_ranks - ranks)
        delta = float(change.max())
        if telemetry is not None:
            telemetry.append(float(change.sum()))
        ranks = new_ranks
        if delta <= epsilon:
            break
    return ranks, iterations


def pagerank(
    src: np.ndarray,
    dst: np.ndarray,
    damping: float = 0.85,
    epsilon: float = 1e-6,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    weights: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Library-level PageRank over edge arrays (no SQL involved).

    Returns (vertex_ids, ranks, iterations)."""
    graph = CSRGraph.from_edges(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        None if weights is None else np.asarray(weights, dtype=np.float64),
    )
    ranks, iterations = pagerank_csr(
        graph, damping, epsilon, max_iterations
    )
    return graph.vertex_ids, ranks, iterations
