"""Bound expressions and their vectorised evaluation.

The binder turns raw AST expressions into *bound* trees with resolved
column slots and types (:mod:`repro.expr.bound`). The compiler
(:mod:`repro.expr.compiler`) turns a bound tree into a closure evaluating
whole column batches at once — the Python stand-in for HyPer's LLVM
data-centric code generation: compile once per query, then run tight
vectorised loops with no per-tuple interpretation.
"""

from .bound import BoundExpr
from .compiler import ExpressionCompiler, EvalContext

__all__ = ["BoundExpr", "ExpressionCompiler", "EvalContext"]
