"""Built-in scalar function registry.

Each function declares how to infer its result type from argument types
and provides a vectorised implementation over :class:`Column` values with
SQL NULL propagation (NULL in -> NULL out, except where SQL says
otherwise, e.g. COALESCE).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import BindError, ExecutionError
from ..storage.column import Column
from ..types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    NULLTYPE,
    SQLType,
    TypeKind,
    VARCHAR,
    common_supertype,
)


@dataclass(frozen=True)
class ScalarFunction:
    """One built-in scalar function."""

    name: str
    min_args: int
    max_args: int  # -1 for variadic
    infer_type: Callable[[Sequence[SQLType]], SQLType]
    impl: Callable[[Sequence[Column]], Column]

    def check_arity(self, count: int) -> None:
        if count < self.min_args or (
            self.max_args != -1 and count > self.max_args
        ):
            expected = (
                str(self.min_args)
                if self.min_args == self.max_args
                else f"{self.min_args}..{'∞' if self.max_args == -1 else self.max_args}"
            )
            raise BindError(
                f"function {self.name}() takes {expected} arguments, "
                f"got {count}"
            )


_REGISTRY: dict[str, ScalarFunction] = {}


def register(func: ScalarFunction) -> None:
    _REGISTRY[func.name] = func


def lookup(name: str) -> ScalarFunction | None:
    return _REGISTRY.get(name.lower())


def function_names() -> list[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _require_numeric(name: str, args: Sequence[SQLType]) -> None:
    for t in args:
        if t.kind is not TypeKind.NULL and not t.is_numeric:
            raise BindError(f"{name}() requires numeric arguments, got {t}")


def _combined_validity(cols: Sequence[Column]) -> np.ndarray | None:
    masks = [c.valid for c in cols if c.valid is not None]
    if not masks:
        return None
    out = masks[0].copy()
    for m in masks[1:]:
        out &= m
    return out


def _double_values(col: Column) -> np.ndarray:
    if col.sql_type.kind is TypeKind.DOUBLE:
        return col.values
    return col.values.astype(np.float64)


def _unary_math(np_func: Callable, domain_note: str = ""):
    """Build an implementation applying ``np_func`` elementwise with NULL
    passthrough; domain errors (sqrt of negative, log of zero) raise."""

    def impl(cols: Sequence[Column]) -> Column:
        (col,) = cols
        values = _double_values(col)
        validity = col.validity()
        out = np.zeros(len(col), dtype=np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            out[validity] = np_func(values[validity])
        if np.isnan(out[validity]).any() or np.isinf(out[validity]).any():
            raise ExecutionError(
                f"math domain error{': ' + domain_note if domain_note else ''}"
            )
        return Column(out, DOUBLE, col.valid)

    return impl


def _numeric_result(args: Sequence[SQLType]) -> SQLType:
    result = NULLTYPE
    for t in args:
        result = common_supertype(result, t)
    if result.kind is TypeKind.NULL:
        return DOUBLE
    return result


# ---------------------------------------------------------------------------
# math functions
# ---------------------------------------------------------------------------


def _abs_impl(cols: Sequence[Column]) -> Column:
    (col,) = cols
    return Column(np.abs(col.values), col.sql_type, col.valid)


register(
    ScalarFunction(
        "abs", 1, 1,
        lambda args: (_require_numeric("abs", args), _numeric_result(args))[1],
        _abs_impl,
    )
)

register(
    ScalarFunction(
        "sqrt", 1, 1,
        lambda args: (_require_numeric("sqrt", args), DOUBLE)[1],
        _unary_math(np.sqrt, "sqrt of a negative number"),
    )
)

register(
    ScalarFunction(
        "exp", 1, 1,
        lambda args: (_require_numeric("exp", args), DOUBLE)[1],
        lambda cols: Column(
            np.exp(_double_values(cols[0])), DOUBLE, cols[0].valid
        ),
    )
)

register(
    ScalarFunction(
        "ln", 1, 1,
        lambda args: (_require_numeric("ln", args), DOUBLE)[1],
        _unary_math(np.log, "ln of a non-positive number"),
    )
)

register(
    ScalarFunction(
        "log", 1, 1,
        lambda args: (_require_numeric("log", args), DOUBLE)[1],
        _unary_math(np.log10, "log of a non-positive number"),
    )
)

register(
    ScalarFunction(
        "log2", 1, 1,
        lambda args: (_require_numeric("log2", args), DOUBLE)[1],
        _unary_math(np.log2, "log2 of a non-positive number"),
    )
)

for _name, _np in (("sin", np.sin), ("cos", np.cos), ("tan", np.tan),
                   ("atan", np.arctan)):
    register(
        ScalarFunction(
            _name, 1, 1,
            lambda args, _n=_name: (_require_numeric(_n, args), DOUBLE)[1],
            lambda cols, _f=_np: Column(
                _f(_double_values(cols[0])), DOUBLE, cols[0].valid
            ),
        )
    )


def _atan2_impl(cols: Sequence[Column]) -> Column:
    y, x = cols
    return Column(
        np.arctan2(_double_values(y), _double_values(x)),
        DOUBLE,
        _combined_validity(cols),
    )


register(
    ScalarFunction(
        "atan2", 2, 2,
        lambda args: (_require_numeric("atan2", args), DOUBLE)[1],
        _atan2_impl,
    )
)


def _floor_impl(cols: Sequence[Column]) -> Column:
    (col,) = cols
    return Column(
        np.floor(_double_values(col)).astype(np.int64), BIGINT, col.valid
    )


def _ceil_impl(cols: Sequence[Column]) -> Column:
    (col,) = cols
    return Column(
        np.ceil(_double_values(col)).astype(np.int64), BIGINT, col.valid
    )


register(ScalarFunction(
    "floor", 1, 1,
    lambda args: (_require_numeric("floor", args), BIGINT)[1], _floor_impl,
))
register(ScalarFunction(
    "ceil", 1, 1,
    lambda args: (_require_numeric("ceil", args), BIGINT)[1], _ceil_impl,
))
register(ScalarFunction(
    "ceiling", 1, 1,
    lambda args: (_require_numeric("ceiling", args), BIGINT)[1], _ceil_impl,
))


def _round_impl(cols: Sequence[Column]) -> Column:
    col = cols[0]
    digits = 0
    if len(cols) == 2:
        if len(cols[1]) == 0:
            digits = 0
        else:
            digits = int(cols[1].values[0])
    values = np.round(_double_values(col), digits)
    return Column(values, DOUBLE, col.valid)


register(ScalarFunction(
    "round", 1, 2,
    lambda args: (_require_numeric("round", args), DOUBLE)[1], _round_impl,
))


def _sign_impl(cols: Sequence[Column]) -> Column:
    (col,) = cols
    return Column(
        np.sign(_double_values(col)).astype(np.int32), INTEGER, col.valid
    )


register(ScalarFunction(
    "sign", 1, 1,
    lambda args: (_require_numeric("sign", args), INTEGER)[1], _sign_impl,
))


def _power_impl(cols: Sequence[Column]) -> Column:
    base, exponent = cols
    values = np.power(
        _double_values(base), _double_values(exponent)
    )
    return Column(values, DOUBLE, _combined_validity(cols))


register(ScalarFunction(
    "power", 2, 2,
    lambda args: (_require_numeric("power", args), DOUBLE)[1], _power_impl,
))
register(ScalarFunction(
    "pow", 2, 2,
    lambda args: (_require_numeric("pow", args), DOUBLE)[1], _power_impl,
))


def _mod_impl(cols: Sequence[Column]) -> Column:
    left, right = cols
    validity = _combined_validity(cols)
    rvals = right.values
    mask = validity if validity is not None else np.ones(len(right), bool)
    if np.any((rvals == 0) & mask):
        raise ExecutionError("division by zero in mod()")
    out_type = _numeric_result([left.sql_type, right.sql_type])
    values = np.mod(left.values, rvals).astype(out_type.numpy_dtype())
    return Column(values, out_type, validity)


register(ScalarFunction(
    "mod", 2, 2,
    lambda args: (_require_numeric("mod", args), _numeric_result(args))[1],
    _mod_impl,
))

register(ScalarFunction(
    "pi", 0, 0, lambda args: DOUBLE,
    lambda cols: Column(np.asarray([math.pi]), DOUBLE),
))


def _variadic_extreme(np_func):
    def impl(cols: Sequence[Column]) -> Column:
        # SQL LEAST/GREATEST ignore NULL arguments per row.
        n = len(cols[0])
        out_type = _numeric_result([c.sql_type for c in cols])
        acc = np.zeros(n, dtype=np.float64)
        acc_valid = np.zeros(n, dtype=np.bool_)
        for col in cols:
            values = _double_values(col)
            validity = col.validity()
            fresh = validity & ~acc_valid
            acc[fresh] = values[fresh]
            both = validity & acc_valid
            acc[both] = np_func(acc[both], values[both])
            acc_valid |= validity
        values = acc.astype(out_type.numpy_dtype())
        return Column(values, out_type, acc_valid)

    return impl


register(ScalarFunction(
    "least", 1, -1,
    lambda args: (_require_numeric("least", args), _numeric_result(args))[1],
    _variadic_extreme(np.minimum),
))
register(ScalarFunction(
    "greatest", 1, -1,
    lambda args: (
        _require_numeric("greatest", args), _numeric_result(args)
    )[1],
    _variadic_extreme(np.maximum),
))


# ---------------------------------------------------------------------------
# NULL handling
# ---------------------------------------------------------------------------


def _coalesce_infer(args: Sequence[SQLType]) -> SQLType:
    result = NULLTYPE
    for t in args:
        result = common_supertype(result, t)
    return result if result.kind is not TypeKind.NULL else NULLTYPE


def _coalesce_impl(cols: Sequence[Column]) -> Column:
    target = _coalesce_infer([c.sql_type for c in cols])
    n = len(cols[0])
    out = np.zeros(n, dtype=target.numpy_dtype())
    out_valid = np.zeros(n, dtype=np.bool_)
    for col in cols:
        casted = col.cast(target)
        validity = casted.validity()
        fill = validity & ~out_valid
        out[fill] = casted.values[fill]
        out_valid |= validity
    return Column(out, target, out_valid)


register(ScalarFunction("coalesce", 1, -1, _coalesce_infer, _coalesce_impl))


def _nullif_infer(args: Sequence[SQLType]) -> SQLType:
    return common_supertype(args[0], args[1])


def _nullif_impl(cols: Sequence[Column]) -> Column:
    target = _nullif_infer([c.sql_type for c in cols])
    left = cols[0].cast(target)
    right = cols[1].cast(target)
    validity = left.validity().copy()
    both = left.validity() & right.validity()
    equal = np.zeros(len(left), dtype=np.bool_)
    equal[both] = left.values[both] == right.values[both]
    validity[equal] = False
    return Column(left.values, target, validity)


register(ScalarFunction("nullif", 2, 2, _nullif_infer, _nullif_impl))


# ---------------------------------------------------------------------------
# string functions
# ---------------------------------------------------------------------------


def _require_varchar(name: str, t: SQLType) -> None:
    if t.kind not in (TypeKind.VARCHAR, TypeKind.NULL):
        raise BindError(f"{name}() requires a string argument, got {t}")


def _string_unary(py_func):
    def impl(cols: Sequence[Column]) -> Column:
        (col,) = cols
        validity = col.validity()
        out = np.empty(len(col), dtype=object)
        for i in range(len(col)):
            if validity[i]:
                out[i] = py_func(col.values[i])
        return Column(out, VARCHAR, col.valid)

    return impl


register(ScalarFunction(
    "lower", 1, 1,
    lambda args: (_require_varchar("lower", args[0]), VARCHAR)[1],
    _string_unary(str.lower),
))
register(ScalarFunction(
    "upper", 1, 1,
    lambda args: (_require_varchar("upper", args[0]), VARCHAR)[1],
    _string_unary(str.upper),
))
register(ScalarFunction(
    "trim", 1, 1,
    lambda args: (_require_varchar("trim", args[0]), VARCHAR)[1],
    _string_unary(str.strip),
))
register(ScalarFunction(
    "ltrim", 1, 1,
    lambda args: (_require_varchar("ltrim", args[0]), VARCHAR)[1],
    _string_unary(str.lstrip),
))
register(ScalarFunction(
    "rtrim", 1, 1,
    lambda args: (_require_varchar("rtrim", args[0]), VARCHAR)[1],
    _string_unary(str.rstrip),
))
register(ScalarFunction(
    "reverse", 1, 1,
    lambda args: (_require_varchar("reverse", args[0]), VARCHAR)[1],
    _string_unary(lambda s: s[::-1]),
))


def _length_impl(cols: Sequence[Column]) -> Column:
    (col,) = cols
    validity = col.validity()
    out = np.zeros(len(col), dtype=np.int32)
    for i in range(len(col)):
        if validity[i]:
            out[i] = len(col.values[i])
    return Column(out, INTEGER, col.valid)


register(ScalarFunction(
    "length", 1, 1,
    lambda args: (_require_varchar("length", args[0]), INTEGER)[1],
    _length_impl,
))
register(ScalarFunction(
    "char_length", 1, 1,
    lambda args: (_require_varchar("char_length", args[0]), INTEGER)[1],
    _length_impl,
))


def _substr_impl(cols: Sequence[Column]) -> Column:
    col = cols[0]
    validity = _combined_validity(cols)
    materialised = (
        validity if validity is not None else np.ones(len(col), np.bool_)
    )
    out = np.empty(len(col), dtype=object)
    for i in range(len(col)):
        if not materialised[i]:
            continue
        text = col.values[i]
        start = int(cols[1].values[i])  # 1-based per SQL
        begin = max(start - 1, 0)
        if len(cols) == 3:
            count = int(cols[2].values[i])
            out[i] = text[begin : begin + max(count, 0)]
        else:
            out[i] = text[begin:]
    return Column(out, VARCHAR, validity)


register(ScalarFunction(
    "substr", 2, 3,
    lambda args: (_require_varchar("substr", args[0]), VARCHAR)[1],
    _substr_impl,
))
register(ScalarFunction(
    "substring", 2, 3,
    lambda args: (_require_varchar("substring", args[0]), VARCHAR)[1],
    _substr_impl,
))


def _replace_impl(cols: Sequence[Column]) -> Column:
    validity = _combined_validity(cols)
    n = len(cols[0])
    materialised = validity if validity is not None else np.ones(n, np.bool_)
    out = np.empty(n, dtype=object)
    for i in range(n):
        if materialised[i]:
            out[i] = cols[0].values[i].replace(
                cols[1].values[i], cols[2].values[i]
            )
    return Column(out, VARCHAR, validity)


register(ScalarFunction(
    "replace", 3, 3,
    lambda args: (_require_varchar("replace", args[0]), VARCHAR)[1],
    _replace_impl,
))


def _concat_impl(cols: Sequence[Column]) -> Column:
    # SQL CONCAT treats NULL as empty string (unlike ||).
    n = len(cols[0])
    out = np.empty(n, dtype=object)
    casted = [c.cast(VARCHAR) for c in cols]
    for i in range(n):
        parts = []
        for col in casted:
            value = col.value_at(i)
            if value is not None:
                parts.append(value)
        out[i] = "".join(parts)
    return Column(out, VARCHAR)


register(ScalarFunction(
    "concat", 1, -1, lambda args: VARCHAR, _concat_impl,
))
