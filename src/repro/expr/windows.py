"""Window function registry: arity and result-type rules.

Execution lives in :mod:`repro.exec.window`; this module is what the
binder consults. Supported:

* ranking — ``row_number()``, ``rank()``, ``dense_rank()``;
* navigation — ``lag(expr [, offset [, default]])``, ``lead(...)``;
* windowed aggregates — ``count(*/expr)``, ``sum``, ``avg``, ``min``,
  ``max`` (whole-partition value without ORDER BY; running value with
  peers sharing results when ORDER BY is present).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..errors import BindError
from ..types import BIGINT, DOUBLE, NULLTYPE, SQLType, TypeKind


@dataclass(frozen=True)
class WindowDescriptor:
    name: str
    min_args: int
    max_args: int
    requires_order: bool
    infer_type: Callable[[Sequence[SQLType]], SQLType]

    def check_arity(self, count: int) -> None:
        if not self.min_args <= count <= self.max_args:
            expected = (
                str(self.min_args)
                if self.min_args == self.max_args
                else f"{self.min_args}..{self.max_args}"
            )
            raise BindError(
                f"window function {self.name}() takes {expected} "
                f"argument(s), got {count}"
            )


def _numeric_arg(name: str, args: Sequence[SQLType]) -> SQLType:
    if not args or not (
        args[0].is_numeric or args[0].kind is TypeKind.NULL
    ):
        raise BindError(f"{name}() requires a numeric argument")
    return args[0]


def _sum_type(args: Sequence[SQLType]) -> SQLType:
    arg = _numeric_arg("sum", args)
    if arg.kind is TypeKind.DOUBLE or arg.kind is TypeKind.NULL:
        return DOUBLE
    return BIGINT


def _same_as_arg(args: Sequence[SQLType]) -> SQLType:
    if not args:
        raise BindError("expected an argument")
    return args[0]


_REGISTRY: dict[str, WindowDescriptor] = {}


def _register(descriptor: WindowDescriptor) -> None:
    _REGISTRY[descriptor.name] = descriptor


_register(WindowDescriptor(
    "row_number", 0, 0, False, lambda args: BIGINT,
))
_register(WindowDescriptor("rank", 0, 0, True, lambda args: BIGINT))
_register(WindowDescriptor(
    "dense_rank", 0, 0, True, lambda args: BIGINT,
))
_register(WindowDescriptor("lag", 1, 3, True, _same_as_arg))
_register(WindowDescriptor("lead", 1, 3, True, _same_as_arg))
_register(WindowDescriptor(
    "count", 0, 1, False, lambda args: BIGINT,
))
_register(WindowDescriptor("sum", 1, 1, False, _sum_type))
_register(WindowDescriptor(
    "avg", 1, 1, False,
    lambda args: (_numeric_arg("avg", args), DOUBLE)[1],
))
_register(WindowDescriptor("min", 1, 1, False, _same_as_arg))
_register(WindowDescriptor("max", 1, 1, False, _same_as_arg))


def lookup_window(name: str) -> Optional[WindowDescriptor]:
    return _REGISTRY.get(name.lower())


def window_names() -> list[str]:
    return sorted(_REGISTRY)
