"""Vectorised expression compilation.

:class:`ExpressionCompiler` turns a bound expression tree into a Python
closure ``(ColumnBatch, EvalContext) -> Column`` *once per query*; running
the closure performs only numpy array operations. This mirrors the paper's
data-centric code generation (section 3): the cost of translating the
expression is paid at compile time, and the per-batch work contains no
name resolution, no type dispatch, and no per-tuple interpretation.

Three-valued logic: every result :class:`Column` carries a validity mask;
``NULL`` comparisons yield unknown, and AND/OR implement Kleene semantics.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Callable, Optional

import numpy as np

from ..errors import ExecutionError, UDFError
from ..storage.column import Column, ColumnBatch
from ..storage.encoding import DictionaryColumn, EncodedColumn
from ..types import (
    BOOLEAN,
    DOUBLE,
    SQLType,
    TypeKind,
    VARCHAR,
)
from . import bound as b

#: A compiled expression: evaluates one batch to one column.
Compiled = Callable[[ColumnBatch, "EvalContext"], Column]


def _decode_skipped(rows: int) -> None:
    """Count rows whose predicate was evaluated on codes/offsets/runs
    instead of decoded values. Kernel closures are shared process-wide
    (the kernel cache outlives sessions), so this reports to the global
    registry rather than a captured session registry."""
    from ..obs.metrics import global_registry

    global_registry().counter("scan_decode_skipped_total").inc(rows)


class EvalContext:
    """Runtime state threaded through expression evaluation.

    ``params`` holds correlated-subquery parameter values for the current
    outer row. ``execute_plan`` is injected by the executor so expressions
    can run subplans (scalar/IN/EXISTS subqueries); uncorrelated subquery
    results are cached per query execution.
    """

    def __init__(
        self,
        execute_plan: Optional[Callable] = None,
        params: Optional[dict[str, object]] = None,
    ):
        self.execute_plan = execute_plan
        self.params: dict[str, object] = params or {}
        self.subquery_cache: dict[int, object] = {}

    def child(self, params: dict[str, object]) -> "EvalContext":
        """A context for a correlated subquery invocation: fresh params,
        shared executor and cache. Statement-level ``?N`` parameter
        slots are inherited — the subquery may reference them too."""
        merged = {
            k: v for k, v in self.params.items() if k.startswith("?")
        }
        merged.update(params)
        ctx = EvalContext(self.execute_plan, merged)
        ctx.subquery_cache = self.subquery_cache
        return ctx


def truth_mask(col: Column) -> np.ndarray:
    """Collapse a 3VL boolean column to a selection mask: unknown -> False
    (SQL WHERE semantics)."""
    values = col.values.astype(np.bool_, copy=False)
    if col.valid is None:
        return values
    return values & col.valid


def _and_validity(
    left: np.ndarray | None, right: np.ndarray | None
) -> np.ndarray | None:
    if left is None:
        return right
    if right is None:
        return left
    return left & right


def _scalar_constant(expr: b.BoundExpr):
    """The Python scalar a numeric expression folds to, or None.

    Recognises literals and casts of literals — these become inline
    constants in compiled closures instead of materialised columns."""
    if isinstance(expr, b.BoundLiteral):
        value = expr.value
        if isinstance(value, (int, float, bool)) and not isinstance(
            value, bool
        ):
            return value
        return None
    if isinstance(expr, b.BoundCast):
        inner = _scalar_constant(expr.operand)
        if inner is None:
            return None
        kind = expr.sql_type.kind
        if kind is TypeKind.DOUBLE:
            return float(inner)
        if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
            return int(inner)
        return None
    return None


def _string_const_source(expr: b.BoundExpr):
    """A resolver spec for a constant string comparison side:
    ``("lit", s)`` or ``("param", slot)``; None otherwise. Parameters
    resolve per batch (correlated values change per outer row)."""
    if isinstance(expr, b.BoundLiteral) and isinstance(
        expr.value, str
    ):
        return ("lit", expr.value)
    if isinstance(expr, b.BoundParam) and expr.sql_type.kind in (
        TypeKind.VARCHAR, TypeKind.NULL
    ):
        return ("param", expr.slot)
    return None


def _resolve_string_const(source, ctx: "EvalContext"):
    if source[0] == "lit":
        return source[1]
    return ctx.params.get(source[1])


def _to_dtype(value, dtype: np.dtype):
    """Cast an array (no copy when possible); pass scalars through."""
    if isinstance(value, np.ndarray):
        return value.astype(dtype, copy=False)
    return value


# ---------------------------------------------------------------------------
# Compiled-kernel cache
# ---------------------------------------------------------------------------

#: Whole-expression kernels kept across statements (LRU beyond this).
KERNEL_CACHE_CAPACITY = 512

_KERNEL_CACHE: "OrderedDict[tuple, Compiled]" = OrderedDict()
_KERNEL_LOCK = threading.Lock()


def kernel_fingerprint(expr: b.BoundExpr) -> Optional[tuple]:
    """A structural, hashable fingerprint of a bound expression tree.

    Two trees with equal fingerprints compile to interchangeable
    closures: node types, operators, column slots (whose batch keys are
    binder-deterministic), literal values *and* their Python types, and
    SQL result types all participate. Returns None for uncacheable
    trees: subqueries (their closures key runtime caches on node
    identity and capture plans) and UDFs/lambdas (arbitrary Python whose
    identity a structural walk cannot capture).
    """
    if isinstance(expr, b.BoundLiteral):
        return (
            "lit", type(expr.value).__name__, expr.value,
            expr.sql_type.kind.value,
        )
    if isinstance(expr, b.BoundColumnRef):
        return ("col", expr.slot, expr.sql_type.kind.value)
    if isinstance(expr, b.BoundParam):
        return ("param", expr.slot, expr.sql_type.kind.value)
    if isinstance(expr, b.BoundUnary):
        operand = kernel_fingerprint(expr.operand)
        if operand is None:
            return None
        return ("un", expr.op, expr.sql_type.kind.value, operand)
    if isinstance(expr, b.BoundBinary):
        left = kernel_fingerprint(expr.left)
        right = kernel_fingerprint(expr.right)
        if left is None or right is None:
            return None
        return ("bin", expr.op, expr.sql_type.kind.value, left, right)
    if isinstance(expr, b.BoundFunction):
        args = tuple(kernel_fingerprint(a) for a in expr.args)
        if any(a is None for a in args):
            return None
        return ("fn", expr.name, expr.sql_type.kind.value) + args
    if isinstance(expr, b.BoundCast):
        operand = kernel_fingerprint(expr.operand)
        if operand is None:
            return None
        return (
            "cast", expr.sql_type.kind.value, expr.sql_type.width,
            operand,
        )
    if isinstance(expr, b.BoundCase):
        parts: list[object] = ["case", expr.sql_type.kind.value]
        for when, then in expr.whens:
            w = kernel_fingerprint(when)
            t = kernel_fingerprint(then)
            if w is None or t is None:
                return None
            parts.append((w, t))
        if expr.else_result is not None:
            e = kernel_fingerprint(expr.else_result)
            if e is None:
                return None
            parts.append(("else", e))
        return tuple(parts)
    if isinstance(expr, b.BoundIsNull):
        operand = kernel_fingerprint(expr.operand)
        if operand is None:
            return None
        return ("isnull", expr.negated, operand)
    if isinstance(expr, b.BoundInList):
        operand = kernel_fingerprint(expr.operand)
        if operand is None:
            return None
        items = tuple(kernel_fingerprint(i) for i in expr.items)
        if any(i is None for i in items):
            return None
        return ("inlist", expr.negated, operand) + items
    if isinstance(expr, b.BoundLike):
        operand = kernel_fingerprint(expr.operand)
        pattern = kernel_fingerprint(expr.pattern)
        if operand is None or pattern is None:
            return None
        return ("like", expr.negated, pattern, operand)
    # BoundSubquery, BoundUDF, BoundLambda, anything unknown.
    return None


_LIKE_CACHE: dict[str, re.Pattern] = {}


def _like_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern to an anchored regex (cached)."""
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("^" + "".join(parts) + "$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


class ExpressionCompiler:
    """Compiles bound expressions to batch-at-a-time closures.

    Whole-expression kernels are shared across statements through a
    process-wide LRU keyed on :func:`kernel_fingerprint`: compiled
    closures are pure functions of ``(batch, eval_ctx)``, so a repeated
    predicate or projection skips the tree walk entirely. ``metrics``
    (optional) receives ``expr_kernel_cache_{hits,misses}_total``.
    """

    def __init__(self, metrics=None):
        self.metrics = metrics
        #: Tri-state kernel-cache switch: None follows REPRO_PLAN_CACHE
        #: (checked per compile), True/False forces it (session override).
        self.enabled: Optional[bool] = None
        self._depth = 0

    def compile(self, expr: b.BoundExpr) -> Compiled:
        """Dispatch on node type; returns the evaluation closure."""
        if self._depth == 0:
            enabled = self.enabled
            if enabled is None:
                from ..plan.cache import cache_enabled

                enabled = cache_enabled()
            if enabled:
                return self._compile_cached(expr)
        return self._dispatch(expr)

    def _compile_cached(self, expr: b.BoundExpr) -> Compiled:
        # Leaves compile in a few instructions; caching them per literal
        # value would only churn the LRU (e.g. one INSERT per row floods
        # it with single-use fingerprints).
        if isinstance(
            expr, (b.BoundLiteral, b.BoundColumnRef, b.BoundParam)
        ):
            return self._dispatch(expr)
        fingerprint = kernel_fingerprint(expr)
        if fingerprint is None:
            return self._dispatch(expr)
        with _KERNEL_LOCK:
            fn = _KERNEL_CACHE.get(fingerprint)
            if fn is not None:
                _KERNEL_CACHE.move_to_end(fingerprint)
        if fn is not None:
            if self.metrics is not None:
                self.metrics.counter(
                    "expr_kernel_cache_hits_total"
                ).inc()
            return fn
        fn = self._dispatch(expr)
        with _KERNEL_LOCK:
            _KERNEL_CACHE[fingerprint] = fn
            _KERNEL_CACHE.move_to_end(fingerprint)
            while len(_KERNEL_CACHE) > KERNEL_CACHE_CAPACITY:
                _KERNEL_CACHE.popitem(last=False)
        if self.metrics is not None:
            self.metrics.counter("expr_kernel_cache_misses_total").inc()
        return fn

    def _dispatch(self, expr: b.BoundExpr) -> Compiled:
        method = getattr(self, f"_compile_{type(expr).__name__}", None)
        if method is None:
            raise ExecutionError(
                f"cannot compile expression node {type(expr).__name__}"
            )
        self._depth += 1
        try:
            return method(expr)
        finally:
            self._depth -= 1

    def compile_predicate(
        self, expr: b.BoundExpr
    ) -> Callable[[ColumnBatch, EvalContext], np.ndarray]:
        """Compile to a selection-mask function (unknown -> False)."""
        compiled = self.compile(expr)

        def run(batch: ColumnBatch, ctx: EvalContext) -> np.ndarray:
            return truth_mask(compiled(batch, ctx))

        return run

    # -- leaves ------------------------------------------------------------

    def _compile_BoundLiteral(self, expr: b.BoundLiteral) -> Compiled:
        value = expr.value
        sql_type = expr.sql_type

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            return Column.constant(value, len(batch), sql_type)

        return run

    def _compile_BoundColumnRef(self, expr: b.BoundColumnRef) -> Compiled:
        slot = expr.slot

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            try:
                return batch[slot]
            except KeyError:
                raise ExecutionError(
                    f"column slot {slot!r} missing from batch "
                    f"(has {batch.names()})"
                ) from None

        return run

    def _compile_BoundParam(self, expr: b.BoundParam) -> Compiled:
        slot = expr.slot
        sql_type = expr.sql_type

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            if slot not in ctx.params:
                raise ExecutionError(
                    f"unbound correlated parameter {slot!r}"
                )
            return Column.constant(ctx.params[slot], len(batch), sql_type)

        return run

    # -- operators -----------------------------------------------------------

    def _compile_BoundUnary(self, expr: b.BoundUnary) -> Compiled:
        operand = self.compile(expr.operand)
        if expr.op == "-":
            sql_type = expr.sql_type

            def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
                col = operand(batch, ctx)
                return Column(-col.values, sql_type, col.valid)

            return run
        if expr.op == "not":

            def run_not(batch: ColumnBatch, ctx: EvalContext) -> Column:
                col = operand(batch, ctx)
                values = ~col.values.astype(np.bool_, copy=False)
                return Column(values, BOOLEAN, col.valid)

            return run_not
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _compile_BoundBinary(self, expr: b.BoundBinary) -> Compiled:
        op = expr.op
        if op in ("and", "or"):
            return self._compile_logical(expr)
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        sql_type = expr.sql_type

        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._compile_comparison(expr, left, right)

        if op == "||":

            def run_concat(batch: ColumnBatch, ctx: EvalContext) -> Column:
                lcol = left(batch, ctx).cast(VARCHAR)
                rcol = right(batch, ctx).cast(VARCHAR)
                validity = _and_validity(lcol.valid, rcol.valid)
                n = len(lcol)
                out = np.empty(n, dtype=object)
                mask = (
                    validity
                    if validity is not None
                    else np.ones(n, dtype=np.bool_)
                )
                for i in np.flatnonzero(mask):
                    out[i] = lcol.values[i] + rcol.values[i]
                return Column(out, VARCHAR, validity)

            return run_concat

        # Arithmetic: the binder guarantees numeric operands and has set
        # the result type; cast inputs to it once. Literal operands stay
        # Python scalars (constant propagation into the generated
        # closure) so constants are never materialised as columns and
        # numpy broadcasting does the work.
        integral = sql_type.is_integral
        target_dtype = sql_type.numpy_dtype()
        left_const = _scalar_constant(expr.left)
        right_const = _scalar_constant(expr.right)

        if op == "^" and right_const is not None:
            # Specialise constant exponents; x^2 as x*x is the single
            # biggest win for lambda distance metrics.
            exponent = float(right_const)

            def run_pow(batch: ColumnBatch, ctx: EvalContext) -> Column:
                lcol = left(batch, ctx)
                base = lcol.values.astype(np.float64, copy=False)
                if exponent == 2.0:
                    values = base * base
                elif exponent == 1.0:
                    values = base
                elif exponent == 0.5:
                    values = np.sqrt(base)
                else:
                    values = np.power(base, exponent)
                return Column(values, sql_type, lcol.valid)

            return run_pow

        def run_arith(batch: ColumnBatch, ctx: EvalContext) -> Column:
            if left_const is not None:
                lval = left_const
                lvalid = None
            else:
                lcol = left(batch, ctx)
                lval = lcol.values
                lvalid = lcol.valid
            if right_const is not None:
                rval = right_const
                rvalid = None
            else:
                rcol = right(batch, ctx)
                rval = rcol.values
                rvalid = rcol.valid
            validity = _and_validity(lvalid, rvalid)
            lval = _to_dtype(lval, target_dtype)
            rval = _to_dtype(rval, target_dtype)
            if op == "+":
                values = lval + rval
            elif op == "-":
                values = lval - rval
            elif op == "*":
                values = lval * rval
            elif op == "/":
                if np.isscalar(rval) or rval.ndim == 0:
                    if rval == 0:
                        raise ExecutionError("division by zero")
                    safe = rval
                else:
                    live = (
                        validity
                        if validity is not None
                        else np.ones(len(batch), dtype=np.bool_)
                    )
                    if np.any((rval == 0) & live):
                        raise ExecutionError("division by zero")
                    safe = np.where(rval == 0, 1, rval)
                if integral:
                    # SQL integer division truncates toward zero.
                    quotient = (
                        np.asarray(lval, dtype=np.float64)
                        / np.asarray(safe, dtype=np.float64)
                    )
                    values = np.trunc(quotient).astype(target_dtype)
                else:
                    values = (
                        np.asarray(lval, dtype=np.float64)
                        / np.asarray(safe, dtype=np.float64)
                    )
            elif op == "%":
                if np.isscalar(rval) or rval.ndim == 0:
                    if rval == 0:
                        raise ExecutionError("division by zero in %")
                    safe = rval
                else:
                    live = (
                        validity
                        if validity is not None
                        else np.ones(len(batch), dtype=np.bool_)
                    )
                    if np.any((rval == 0) & live):
                        raise ExecutionError("division by zero in %")
                    safe = np.where(rval == 0, 1, rval)
                values = np.fmod(lval, safe)
            elif op == "^":
                values = np.power(
                    np.asarray(lval, dtype=np.float64),
                    np.asarray(rval, dtype=np.float64),
                )
            else:
                raise ExecutionError(f"unknown binary operator {op!r}")
            if np.isscalar(values) or values.ndim == 0:
                # Both operands were constants: broadcast to the batch.
                return Column.constant(
                    values.item() if hasattr(values, "item") else values,
                    len(batch),
                    sql_type,
                )
            return Column(values, sql_type, validity)

        return run_arith

    def _compile_comparison(
        self, expr: b.BoundBinary, left: Compiled, right: Compiled
    ) -> Compiled:
        op = expr.op
        is_string = (
            expr.left.sql_type.kind is TypeKind.VARCHAR
            or expr.right.sql_type.kind is TypeKind.VARCHAR
        )

        left_const = None if is_string else _scalar_constant(expr.left)
        right_const = None if is_string else _scalar_constant(expr.right)

        # Predicate-on-codes: when one side is a constant, an encoded
        # column on the other side compares without decoding —
        # dictionary codes for strings, offsets/runs for integers.
        # ``(compiled column side, effective op, string source)``; the
        # numeric consts reuse left_const/right_const.
        _FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                 "=": "=", "<>": "<>", "!=": "!="}
        if is_string:
            rsrc = _string_const_source(expr.right)
            lsrc = _string_const_source(expr.left)
            if rsrc is not None:
                fast_str = (True, op, rsrc)
            elif lsrc is not None:
                fast_str = (False, _FLIP[op], lsrc)
            else:
                fast_str = None
        else:
            fast_str = None

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            if fast_str is not None:
                col_on_left, eff_op, src = fast_str
                ccol = (left if col_on_left else right)(batch, ctx)
                if isinstance(ccol, DictionaryColumn):
                    const = _resolve_string_const(src, ctx)
                    if isinstance(const, str):
                        out = ccol.compare_const(eff_op, const)
                        _decode_skipped(len(ccol))
                        return Column(out, BOOLEAN, ccol.valid)
                    # Bound-but-NULL parameter: the comparison is
                    # unknown everywhere, still without decoding.
                    if (
                        const is None
                        and src[0] == "param"
                        and src[1] in ctx.params
                    ):
                        n = len(batch)
                        return Column(
                            np.zeros(n, dtype=np.bool_), BOOLEAN,
                            np.zeros(n, dtype=np.bool_),
                        )
            if left_const is not None:
                lval, lvalid = left_const, None
                if right_const is None:
                    rcol = right(batch, ctx)
                    if isinstance(rcol, EncodedColumn) and not (
                        isinstance(rcol, DictionaryColumn)
                    ):
                        out = rcol.compare_const(
                            _FLIP[op], left_const
                        )
                        _decode_skipped(len(rcol))
                        return Column(out, BOOLEAN, rcol.valid)
                    rval, rvalid = rcol.values, rcol.valid
                else:
                    rval, rvalid = right_const, None
            else:
                lcol = left(batch, ctx)
                if right_const is not None and isinstance(
                    lcol, EncodedColumn
                ) and not isinstance(lcol, DictionaryColumn):
                    out = lcol.compare_const(op, right_const)
                    _decode_skipped(len(lcol))
                    return Column(out, BOOLEAN, lcol.valid)
                lval, lvalid = lcol.values, lcol.valid
                if right_const is not None:
                    rval, rvalid = right_const, None
                else:
                    rcol = right(batch, ctx)
                    rval, rvalid = rcol.values, rcol.valid
            validity = _and_validity(lvalid, rvalid)
            if is_string:
                # Object-dtype comparisons go through Python operators but
                # remain a single numpy elementwise pass.
                n = len(batch)
                out = np.zeros(n, dtype=np.bool_)
                live = (
                    validity
                    if validity is not None
                    else np.ones(n, dtype=np.bool_)
                )
                idx = np.flatnonzero(live)
                lv, rv = lval, rval
                if op == "=":
                    for i in idx:
                        out[i] = lv[i] == rv[i]
                elif op == "<>":
                    for i in idx:
                        out[i] = lv[i] != rv[i]
                elif op == "<":
                    for i in idx:
                        out[i] = lv[i] < rv[i]
                elif op == "<=":
                    for i in idx:
                        out[i] = lv[i] <= rv[i]
                elif op == ">":
                    for i in idx:
                        out[i] = lv[i] > rv[i]
                else:
                    for i in idx:
                        out[i] = lv[i] >= rv[i]
                return Column(out, BOOLEAN, validity)
            if op == "=":
                values = lval == rval
            elif op == "<>":
                values = lval != rval
            elif op == "<":
                values = lval < rval
            elif op == "<=":
                values = lval <= rval
            elif op == ">":
                values = lval > rval
            else:
                values = lval >= rval
            if np.isscalar(values) or (
                hasattr(values, "ndim") and values.ndim == 0
            ):
                return Column.constant(bool(values), len(batch), BOOLEAN)
            return Column(np.asarray(values, dtype=np.bool_), BOOLEAN, validity)

        return run

    def _compile_logical(self, expr: b.BoundBinary) -> Compiled:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        is_and = expr.op == "and"

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            lcol = left(batch, ctx)
            rcol = right(batch, ctx)
            lval = lcol.values.astype(np.bool_, copy=False)
            rval = rcol.values.astype(np.bool_, copy=False)
            lvalid = lcol.validity()
            rvalid = rcol.validity()
            if is_and:
                # Kleene AND: false AND anything = false.
                values = lval & rval
                known_false = (~lval & lvalid) | (~rval & rvalid)
                validity = (lvalid & rvalid) | known_false
            else:
                # Kleene OR: true OR anything = true.
                values = lval | rval
                known_true = (lval & lvalid) | (rval & rvalid)
                validity = (lvalid & rvalid) | known_true
            return Column(values, BOOLEAN, validity)

        return run

    # -- functions, casts, CASE ------------------------------------------------

    def _compile_BoundFunction(self, expr: b.BoundFunction) -> Compiled:
        from . import functions

        func = functions.lookup(expr.name)
        if func is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        args = [self.compile(a) for a in expr.args]
        impl = func.impl
        sql_type = expr.sql_type

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            cols = [a(batch, ctx) for a in args]
            if not cols:
                # Zero-arg functions (pi()): broadcast to batch length.
                single = impl(cols)
                return Column.constant(
                    single.value_at(0), len(batch), sql_type
                )
            return impl(cols)

        return run

    def _compile_BoundUDF(self, expr: b.BoundUDF) -> Compiled:
        args = [self.compile(a) for a in expr.args]
        func = expr.func
        name = expr.name
        sql_type = expr.sql_type

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            cols = [a(batch, ctx) for a in args]
            n = len(batch)
            results: list[object] = [None] * n
            # Black-box per-row execution: the engine cannot vectorise or
            # inspect user code (paper section 4.1).
            arg_lists = [c.to_pylist() for c in cols]
            for i in range(n):
                try:
                    results[i] = func(*(a[i] for a in arg_lists))
                except Exception as exc:  # noqa: BLE001 - sandbox boundary
                    raise UDFError(
                        f"UDF {name!r} raised {type(exc).__name__}: {exc}"
                    ) from exc
            return Column.from_values(results, sql_type)

        return run

    def _compile_BoundCast(self, expr: b.BoundCast) -> Compiled:
        operand = self.compile(expr.operand)
        target = expr.sql_type

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            return operand(batch, ctx).cast(target)

        return run

    def _compile_BoundCase(self, expr: b.BoundCase) -> Compiled:
        whens = [
            (self.compile(cond), self.compile(result))
            for cond, result in expr.whens
        ]
        else_result = (
            self.compile(expr.else_result)
            if expr.else_result is not None
            else None
        )
        sql_type = expr.sql_type

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            n = len(batch)
            out = np.zeros(n, dtype=sql_type.numpy_dtype())
            out_valid = np.zeros(n, dtype=np.bool_)
            undecided = np.ones(n, dtype=np.bool_)
            for cond, result in whens:
                if not undecided.any():
                    break
                mask = truth_mask(cond(batch, ctx)) & undecided
                if not mask.any():
                    # A WHEN that matches nothing still decides nothing.
                    undecided &= ~mask
                    continue
                res = result(batch, ctx).cast(sql_type)
                out[mask] = res.values[mask]
                out_valid[mask] = res.validity()[mask]
                undecided &= ~mask
            if else_result is not None and undecided.any():
                res = else_result(batch, ctx).cast(sql_type)
                out[undecided] = res.values[undecided]
                out_valid[undecided] = res.validity()[undecided]
            return Column(out, sql_type, out_valid)

        return run

    # -- predicates ---------------------------------------------------------------

    def _compile_BoundIsNull(self, expr: b.BoundIsNull) -> Compiled:
        operand = self.compile(expr.operand)
        negated = expr.negated

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            col = operand(batch, ctx)
            if isinstance(col, EncodedColumn):
                # Already decode-free (validity only) — count it.
                _decode_skipped(len(col))
            is_null = ~col.validity()
            values = ~is_null if negated else is_null
            return Column(values, BOOLEAN)

        return run

    def _compile_BoundInList(self, expr: b.BoundInList) -> Compiled:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        negated = expr.negated
        # Dictionary fast path: every IN item a constant string means
        # membership is a set test over codes, no decode.
        item_sources = None
        if expr.operand.sql_type.kind is TypeKind.VARCHAR:
            sources = [
                _string_const_source(item) for item in expr.items
            ]
            if all(s is not None for s in sources):
                item_sources = sources

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            col = operand(batch, ctx)
            if item_sources is not None and isinstance(
                col, DictionaryColumn
            ):
                consts = [
                    _resolve_string_const(s, ctx)
                    for s in item_sources
                ]
                if all(isinstance(c, str) for c in consts):
                    matched = col.isin_const(consts)
                    _decode_skipped(len(col))
                    values = ~matched if negated else matched
                    return Column(values, BOOLEAN, col.valid)
            n = len(col)
            matched = np.zeros(n, dtype=np.bool_)
            any_null_item = np.zeros(n, dtype=np.bool_)
            for item in items:
                icol = item(batch, ctx)
                ivalid = icol.validity()
                any_null_item |= ~ivalid
                equal = col.values == icol.values
                matched |= np.asarray(equal, dtype=np.bool_) & ivalid
            # SQL: x IN (..NULL..) is NULL when nothing matched.
            validity = col.validity() & (matched | ~any_null_item)
            values = ~matched if negated else matched
            return Column(values, BOOLEAN, validity)

        return run

    def _compile_BoundLike(self, expr: b.BoundLike) -> Compiled:
        operand = self.compile(expr.operand)
        pattern = self.compile(expr.pattern)
        negated = expr.negated

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            col = operand(batch, ctx)
            pat = pattern(batch, ctx)
            validity = _and_validity(col.valid, pat.valid)
            n = len(col)
            out = np.zeros(n, dtype=np.bool_)
            live = (
                validity if validity is not None else np.ones(n, np.bool_)
            )
            for i in np.flatnonzero(live):
                regex = _like_regex(pat.values[i])
                out[i] = regex.match(col.values[i]) is not None
            if negated:
                out = ~out
            return Column(out, BOOLEAN, validity)

        return run

    # -- subqueries -------------------------------------------------------------------

    def _compile_BoundSubquery(self, expr: b.BoundSubquery) -> Compiled:
        probe = self.compile(expr.probe) if expr.probe is not None else None
        plan = expr.plan
        kind = expr.kind
        negated = expr.negated
        outer_slots = expr.outer_slots
        sql_type = expr.sql_type
        cache_key = id(expr)

        def run_subplan(ctx: EvalContext, params: dict) -> ColumnBatch:
            if ctx.execute_plan is None:
                raise ExecutionError(
                    "subquery evaluation requires an executor context"
                )
            return ctx.execute_plan(plan, params)

        def result_for(
            ctx: EvalContext, params: dict
        ) -> tuple[object, bool] | tuple[set, bool] | bool:
            """Evaluate the subquery once; shape depends on ``kind``."""
            batch = run_subplan(ctx, params)
            if kind == "exists":
                return len(batch) > 0
            first = batch.names()[0]
            col = batch[first]
            if kind == "scalar":
                if len(col) == 0:
                    return (None, False)
                if len(col) > 1:
                    raise ExecutionError(
                        "scalar subquery returned more than one row"
                    )
                return (col.value_at(0), True)
            # kind == "in": membership set + has-null flag
            values = set()
            has_null = False
            for v in col.to_pylist():
                if v is None:
                    has_null = True
                else:
                    values.add(v)
            return (values, has_null)

        def cached_result(ctx: EvalContext):
            if cache_key not in ctx.subquery_cache:
                ctx.subquery_cache[cache_key] = result_for(ctx, {})
            return ctx.subquery_cache[cache_key]

        def run(batch: ColumnBatch, ctx: EvalContext) -> Column:
            n = len(batch)
            correlated = bool(outer_slots)

            if kind == "scalar":
                if not correlated:
                    value, _present = cached_result(ctx)
                    return Column.constant(value, n, sql_type)
                out = [None] * n
                for i in range(n):
                    params = {
                        s: batch[s].value_at(i) for s in outer_slots
                    }
                    value, _present = result_for(ctx, params)
                    out[i] = value
                return Column.from_values(out, sql_type)

            if kind == "exists":
                if not correlated:
                    exists = cached_result(ctx)
                    value = (not exists) if negated else exists
                    return Column.constant(value, n, BOOLEAN)
                out = np.zeros(n, dtype=np.bool_)
                for i in range(n):
                    params = {
                        s: batch[s].value_at(i) for s in outer_slots
                    }
                    out[i] = result_for(ctx, params)
                if negated:
                    out = ~out
                return Column(out, BOOLEAN)

            # kind == "in"
            assert probe is not None
            probe_col = probe(batch, ctx)
            out = np.zeros(n, dtype=np.bool_)
            validity = probe_col.validity().copy()
            if not correlated:
                members, has_null = cached_result(ctx)
                empty = not members and not has_null
                for i in range(n):
                    if not validity[i]:
                        # NULL IN (empty set) is FALSE, not NULL:
                        # there is no row for the comparison to be
                        # unknown against.
                        if empty:
                            validity[i] = True
                        continue
                    hit = probe_col.value_at(i) in members
                    out[i] = hit
                    if not hit and has_null:
                        validity[i] = False  # unknown
            else:
                for i in range(n):
                    params = {
                        s: batch[s].value_at(i) for s in outer_slots
                    }
                    members, has_null = result_for(ctx, params)
                    if not validity[i]:
                        if not members and not has_null:
                            validity[i] = True
                        continue
                    hit = probe_col.value_at(i) in members
                    out[i] = hit
                    if not hit and has_null:
                        validity[i] = False
            if negated:
                out = ~out
            return Column(out, BOOLEAN, validity)

        return run

    # -- lambdas --------------------------------------------------------------------

    def _compile_BoundLambda(self, expr: b.BoundLambda) -> Compiled:
        """Compiling a lambda compiles its body: the variation point feeds
        batches whose column slots are ``{param}.{attr}`` (section 7)."""
        return self.compile(expr.body)
