"""Bound (resolved, typed) expression trees.

Produced by the binder; consumed by the expression compiler and the
optimizer's rewrite rules. Every node knows its result
:class:`~repro.types.SQLType`. Column references carry *slots* — the
unique batch keys assigned during binding — so evaluation never needs
name resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..types import BOOLEAN, SQLType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..plan.logical import LogicalPlan


class BoundExpr:
    """Base class; every subclass has a ``sql_type`` attribute."""

    sql_type: SQLType

    def children(self) -> list["BoundExpr"]:
        """Direct sub-expressions (for tree walks)."""
        return []

    def referenced_slots(self) -> set[str]:
        """All column slots this expression reads (transitively)."""
        slots: set[str] = set()
        stack: list[BoundExpr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, BoundColumnRef):
                slots.add(node.slot)
            stack.extend(node.children())
        return slots

    def contains_subquery(self) -> bool:
        """Whether any node is a subquery (blocks some rewrites)."""
        stack: list[BoundExpr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, BoundSubquery):
                return True
            stack.extend(node.children())
        return False


@dataclass
class BoundLiteral(BoundExpr):
    value: object
    sql_type: SQLType


@dataclass
class BoundColumnRef(BoundExpr):
    """Reads the batch column named ``slot``."""

    slot: str
    sql_type: SQLType
    #: User-facing name for error messages / EXPLAIN.
    display: str = ""


@dataclass
class BoundParam(BoundExpr):
    """A correlated-subquery parameter: filled from the outer row at
    evaluation time (keyed by the outer slot name)."""

    slot: str
    sql_type: SQLType


@dataclass
class BoundUnary(BoundExpr):
    op: str  # "-" | "not"
    operand: BoundExpr
    sql_type: SQLType

    def children(self) -> list[BoundExpr]:
        return [self.operand]


@dataclass
class BoundBinary(BoundExpr):
    """Arithmetic (+,-,*,/,%,^), comparison (=,<>,<,<=,>,>=),
    logical (and, or), string concat (||)."""

    op: str
    left: BoundExpr
    right: BoundExpr
    sql_type: SQLType

    def children(self) -> list[BoundExpr]:
        return [self.left, self.right]


@dataclass
class BoundFunction(BoundExpr):
    """A built-in scalar function call (resolved against the registry)."""

    name: str
    args: list[BoundExpr]
    sql_type: SQLType

    def children(self) -> list[BoundExpr]:
        return list(self.args)


@dataclass
class BoundUDF(BoundExpr):
    """A user-defined scalar function: executed as a black box per the
    paper's layer 2 — the optimizer cannot see inside ``func``."""

    name: str
    func: object  # callable(*scalars) -> scalar
    args: list[BoundExpr]
    sql_type: SQLType

    def children(self) -> list[BoundExpr]:
        return list(self.args)


@dataclass
class BoundCast(BoundExpr):
    operand: BoundExpr
    sql_type: SQLType

    def children(self) -> list[BoundExpr]:
        return [self.operand]


@dataclass
class BoundCase(BoundExpr):
    """Searched CASE (simple CASE is desugared by the binder)."""

    whens: list[tuple[BoundExpr, BoundExpr]]
    else_result: Optional[BoundExpr]
    sql_type: SQLType

    def children(self) -> list[BoundExpr]:
        out: list[BoundExpr] = []
        for cond, result in self.whens:
            out.append(cond)
            out.append(result)
        if self.else_result is not None:
            out.append(self.else_result)
        return out


@dataclass
class BoundIsNull(BoundExpr):
    operand: BoundExpr
    negated: bool = False
    sql_type: SQLType = field(default=BOOLEAN)

    def children(self) -> list[BoundExpr]:
        return [self.operand]


@dataclass
class BoundInList(BoundExpr):
    operand: BoundExpr
    items: list[BoundExpr]
    negated: bool = False
    sql_type: SQLType = field(default=BOOLEAN)

    def children(self) -> list[BoundExpr]:
        return [self.operand, *self.items]


@dataclass
class BoundLike(BoundExpr):
    operand: BoundExpr
    pattern: BoundExpr
    negated: bool = False
    sql_type: SQLType = field(default=BOOLEAN)

    def children(self) -> list[BoundExpr]:
        return [self.operand, self.pattern]


@dataclass
class BoundSubquery(BoundExpr):
    """A subquery used inside an expression.

    ``kind`` is ``scalar`` (single value), ``exists``, or ``in``
    (membership of ``probe`` in the subquery's single output column).
    ``outer_slots`` lists the outer-row slots the subplan's
    :class:`BoundParam` nodes consume; empty means uncorrelated, in which
    case the result is computed once and cached for the whole batch.
    """

    plan: "LogicalPlan"
    kind: str
    sql_type: SQLType
    probe: Optional[BoundExpr] = None
    negated: bool = False
    outer_slots: tuple[str, ...] = ()

    def children(self) -> list[BoundExpr]:
        return [self.probe] if self.probe is not None else []


@dataclass
class BoundLambda(BoundExpr):
    """A bound lambda (paper section 7): the body is an ordinary bound
    expression whose column refs use slots of the form ``param.attr``.

    Variation points bind the lambda against the tuple layouts they feed
    it; at execution the operator presents batches whose columns are
    named exactly ``{param}.{attr}`` and evaluates the body vectorised —
    the lambda fuses into the operator's inner loop.
    """

    params: list[str]
    body: BoundExpr
    #: For each parameter, the attribute names it exposes, in order.
    param_attrs: dict[str, list[str]] = field(default_factory=dict)

    @property
    def sql_type(self) -> SQLType:  # type: ignore[override]
        return self.body.sql_type

    def children(self) -> list[BoundExpr]:
        return [self.body]
