"""Aggregate function registry.

Every aggregate is implemented as a *grouped* vectorised kernel: it
receives the argument column, an ``int64`` array of group codes (one per
input row, in ``[0, n_groups)``), and the group count, and returns one
output :class:`Column` with ``n_groups`` rows. The ungrouped case is the
one-group special case. NULL inputs are skipped per SQL semantics; groups
with no non-NULL input yield NULL (except COUNT, which yields 0).

The same kernels serve the aggregation operator and the analytics
operators' shared statistics building blocks (paper section 6.2 mentions
mean / standard deviation per class as reusable sub-operators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import BindError
from ..storage.column import Column
from ..types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    SQLType,
    TypeKind,
)


@dataclass(frozen=True)
class AggregateFunction:
    """One aggregate: result-type inference plus a grouped kernel."""

    name: str
    needs_argument: bool
    infer_type: Callable[[Optional[SQLType]], SQLType]
    grouped: Callable[[Optional[Column], np.ndarray, int], Column]


_REGISTRY: dict[str, AggregateFunction] = {}


def register(func: AggregateFunction) -> None:
    _REGISTRY[func.name] = func


def lookup(name: str) -> AggregateFunction | None:
    return _REGISTRY.get(name.lower())


def is_aggregate_name(name: str) -> bool:
    return name.lower() in _REGISTRY


def aggregate_names() -> list[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# shared kernels
# ---------------------------------------------------------------------------


def _valid_mask(col: Column) -> np.ndarray:
    return col.validity()


def group_counts(
    col: Optional[Column], codes: np.ndarray, n_groups: int
) -> np.ndarray:
    """Non-NULL row count per group (all rows when ``col`` is None)."""
    if col is None:
        return np.bincount(codes, minlength=n_groups)
    mask = _valid_mask(col)
    return np.bincount(codes[mask], minlength=n_groups)


def group_sums(
    col: Column, codes: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group float64 sums skipping NULLs."""
    mask = _valid_mask(col)
    return np.bincount(
        codes[mask],
        weights=col.values[mask].astype(np.float64),
        minlength=n_groups,
    )


def _segmented_reduce(
    values: np.ndarray, codes: np.ndarray, n_groups: int, ufunc
) -> tuple[np.ndarray, np.ndarray]:
    """Exact per-group reduce via sort + ``ufunc.reduceat``.

    Returns (result, present) where ``present[g]`` says group ``g`` had at
    least one row; result values for absent groups are unspecified.
    """
    present = np.zeros(n_groups, dtype=np.bool_)
    if len(values) == 0:
        return np.zeros(n_groups, dtype=values.dtype), present
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
    )
    reduced = ufunc.reduceat(sorted_values, boundaries)
    group_ids = sorted_codes[boundaries]
    out = np.zeros(n_groups, dtype=values.dtype)
    out[group_ids] = reduced
    present[group_ids] = True
    return out, present


def _object_extreme(
    col: Column, codes: np.ndarray, n_groups: int, pick_smaller: bool
) -> Column:
    """MIN/MAX for object-dtype (VARCHAR) columns — per-row Python path."""
    best: list[object] = [None] * n_groups
    mask = _valid_mask(col)
    values = col.values
    for i in np.flatnonzero(mask):
        g = codes[i]
        current = best[g]
        value = values[i]
        if current is None:
            best[g] = value
        elif (value < current) == pick_smaller and value != current:
            best[g] = value
    return Column.from_values(best, col.sql_type)


# ---------------------------------------------------------------------------
# COUNT
# ---------------------------------------------------------------------------


def _count_star(
    col: Optional[Column], codes: np.ndarray, n_groups: int
) -> Column:
    return Column(
        group_counts(None, codes, n_groups).astype(np.int64), BIGINT
    )


def _count(col: Optional[Column], codes: np.ndarray, n_groups: int) -> Column:
    return Column(
        group_counts(col, codes, n_groups).astype(np.int64), BIGINT
    )


register(AggregateFunction(
    "count_star", False, lambda arg: BIGINT, _count_star,
))
register(AggregateFunction("count", True, lambda arg: BIGINT, _count))


# ---------------------------------------------------------------------------
# SUM / AVG
# ---------------------------------------------------------------------------


def _sum_infer(arg: Optional[SQLType]) -> SQLType:
    if arg is None or not (arg.is_numeric or arg.kind is TypeKind.NULL):
        raise BindError(f"sum() requires a numeric argument, got {arg}")
    if arg.kind is TypeKind.DOUBLE or arg.kind is TypeKind.NULL:
        return DOUBLE
    return BIGINT


def _sum(col: Optional[Column], codes: np.ndarray, n_groups: int) -> Column:
    assert col is not None
    counts = group_counts(col, codes, n_groups)
    valid = counts > 0
    if col.sql_type.kind is TypeKind.DOUBLE:
        sums = group_sums(col, codes, n_groups)
        return Column(sums, DOUBLE, valid)
    # Integral: exact int64 accumulation via segmented reduce.
    mask = _valid_mask(col)
    values = col.values[mask].astype(np.int64)
    sums, _present = _segmented_reduce(values, codes[mask], n_groups, np.add)
    return Column(sums, BIGINT, valid)


register(AggregateFunction("sum", True, _sum_infer, _sum))


def _avg_infer(arg: Optional[SQLType]) -> SQLType:
    if arg is None or not (arg.is_numeric or arg.kind is TypeKind.NULL):
        raise BindError(f"avg() requires a numeric argument, got {arg}")
    return DOUBLE


def _avg(col: Optional[Column], codes: np.ndarray, n_groups: int) -> Column:
    assert col is not None
    counts = group_counts(col, codes, n_groups)
    sums = group_sums(col, codes, n_groups)
    valid = counts > 0
    out = np.zeros(n_groups, dtype=np.float64)
    out[valid] = sums[valid] / counts[valid]
    return Column(out, DOUBLE, valid)


register(AggregateFunction("avg", True, _avg_infer, _avg))
register(AggregateFunction("mean", True, _avg_infer, _avg))


# ---------------------------------------------------------------------------
# MIN / MAX
# ---------------------------------------------------------------------------


def _extreme_infer(name: str):
    def infer(arg: Optional[SQLType]) -> SQLType:
        if arg is None:
            raise BindError(f"{name}() requires an argument")
        return arg

    return infer


def _make_extreme(pick_smaller: bool):
    ufunc = np.minimum if pick_smaller else np.maximum

    def impl(
        col: Optional[Column], codes: np.ndarray, n_groups: int
    ) -> Column:
        assert col is not None
        if col.sql_type.kind is TypeKind.VARCHAR:
            return _object_extreme(col, codes, n_groups, pick_smaller)
        mask = _valid_mask(col)
        values = col.values[mask]
        reduced, present = _segmented_reduce(
            values, codes[mask], n_groups, ufunc
        )
        return Column(reduced, col.sql_type, present)

    return impl


register(AggregateFunction(
    "min", True, _extreme_infer("min"), _make_extreme(True),
))
register(AggregateFunction(
    "max", True, _extreme_infer("max"), _make_extreme(False),
))


# ---------------------------------------------------------------------------
# variance / standard deviation
# ---------------------------------------------------------------------------


def _stat_infer(name: str):
    def infer(arg: Optional[SQLType]) -> SQLType:
        if arg is None or not (arg.is_numeric or arg.kind is TypeKind.NULL):
            raise BindError(f"{name}() requires a numeric argument")
        return DOUBLE

    return infer


def _make_variance(sample: bool, take_sqrt: bool):
    def impl(
        col: Optional[Column], codes: np.ndarray, n_groups: int
    ) -> Column:
        assert col is not None
        mask = _valid_mask(col)
        values = col.values[mask].astype(np.float64)
        group = codes[mask]
        counts = np.bincount(group, minlength=n_groups).astype(np.float64)
        sums = np.bincount(group, weights=values, minlength=n_groups)
        sumsq = np.bincount(
            group, weights=values * values, minlength=n_groups
        )
        min_count = 2 if sample else 1
        valid = counts >= min_count
        out = np.zeros(n_groups, dtype=np.float64)
        denom = counts - 1 if sample else counts
        with np.errstate(invalid="ignore", divide="ignore"):
            centred = sumsq - sums * sums / np.where(counts == 0, 1, counts)
            out[valid] = centred[valid] / denom[valid]
        # Guard tiny negative values from floating-point cancellation.
        np.clip(out, 0.0, None, out=out)
        if take_sqrt:
            out = np.sqrt(out)
        return Column(out, DOUBLE, valid)

    return impl


register(AggregateFunction(
    "var_samp", True, _stat_infer("var_samp"), _make_variance(True, False),
))
register(AggregateFunction(
    "var_pop", True, _stat_infer("var_pop"), _make_variance(False, False),
))
register(AggregateFunction(
    "variance", True, _stat_infer("variance"), _make_variance(True, False),
))
register(AggregateFunction(
    "stddev", True, _stat_infer("stddev"), _make_variance(True, True),
))
register(AggregateFunction(
    "stddev_samp", True, _stat_infer("stddev_samp"),
    _make_variance(True, True),
))
register(AggregateFunction(
    "stddev_pop", True, _stat_infer("stddev_pop"),
    _make_variance(False, True),
))


# ---------------------------------------------------------------------------
# boolean aggregates
# ---------------------------------------------------------------------------


def _bool_infer(name: str):
    def infer(arg: Optional[SQLType]) -> SQLType:
        if arg is None or arg.kind not in (TypeKind.BOOLEAN, TypeKind.NULL):
            raise BindError(f"{name}() requires a boolean argument")
        return BOOLEAN

    return infer


def _make_bool(all_of: bool):
    def impl(
        col: Optional[Column], codes: np.ndarray, n_groups: int
    ) -> Column:
        assert col is not None
        mask = _valid_mask(col)
        values = col.values[mask].astype(np.int8)
        ufunc = np.minimum if all_of else np.maximum
        reduced, present = _segmented_reduce(
            values, codes[mask], n_groups, ufunc
        )
        return Column(reduced.astype(np.bool_), BOOLEAN, present)

    return impl


register(AggregateFunction(
    "bool_and", True, _bool_infer("bool_and"), _make_bool(True),
))
register(AggregateFunction(
    "bool_or", True, _bool_infer("bool_or"), _make_bool(False),
))
register(AggregateFunction(
    "every", True, _bool_infer("every"), _make_bool(True),
))
