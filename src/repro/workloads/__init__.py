"""Layer-3 workloads: the paper's algorithms expressed in SQL.

Each builder returns SQL text for our dialect, in two variants per
algorithm where iteration is involved:

* the **ITERATE** variant (non-appending working relation, section 5.1) —
  the paper's *HyPer Iterate* series, and
* the **recursive CTE** variant (appending, SQL:1999) — *HyPer SQL*.

Naive Bayes training is a single aggregation query (no iteration), so it
has one SQL form.
"""

from .kmeans_sql import kmeans_iterate_sql, kmeans_recursive_sql
from .pagerank_sql import pagerank_iterate_sql, pagerank_recursive_sql
from .naive_bayes_sql import naive_bayes_train_sql
from .apriori_sql import FrequentItemset, apriori

__all__ = [
    "kmeans_iterate_sql",
    "kmeans_recursive_sql",
    "pagerank_iterate_sql",
    "pagerank_recursive_sql",
    "naive_bayes_train_sql",
    "apriori",
    "FrequentItemset",
]
