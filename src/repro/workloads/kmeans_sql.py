"""k-Means expressed in pure SQL (layer 3).

The relational formulation of one Lloyd iteration:

1. ``dist``  — cross join data x centers with the squared distance,
2. ``mind``  — per-point minimum distance (GROUP BY),
3. ``asg``   — per-point assigned center (join back on the minimum,
   breaking ties by the smallest center id),
4. update   — per-center AVG of its assigned points.

The working relation carries an explicit iteration counter column —
exactly the overhead the paper attributes to SQL-level iteration when
the stop criterion is an iteration count (section 5.1): with recursive
CTEs the counter is materialised in *every* tuple of *every* round.

Both variants expect:

* a data table with an integer key column plus ``d`` numeric feature
  columns, and
* an initial-centers table with an integer center id plus the same
  ``d`` feature columns.
"""

from __future__ import annotations


def _sqdist(
    left_alias: str, right_alias: str,
    features: list[str], center_features: list[str],
) -> str:
    terms = [
        f"({left_alias}.{f} - {right_alias}.{c})^2"
        for f, c in zip(features, center_features)
    ]
    return " + ".join(terms)


def _assignment_subquery(
    data_table: str,
    working: str,
    key: str,
    cid: str,
    features: list[str],
    center_features: list[str],
    use_window: bool = False,
) -> str:
    """The ``asg`` derived table: (point key, assigned center id).

    Default (``use_window=False``): the classic min-join formulation —
    the distance computation is inlined twice (once for the per-point
    minimum, once for the join back), the join-heavy shape the paper
    describes for relational iteration (section 8.4.2).

    With ``use_window=True``: the leaner window formulation, one
    distance evaluation ranked by ``row_number() OVER (PARTITION BY
    point ORDER BY distance, center)``.
    """
    if use_window:
        return (
            f"SELECT pid, cid FROM ("
            f"SELECT d.{key} AS pid, c.{cid} AS cid, "
            f"row_number() OVER (PARTITION BY d.{key} ORDER BY "
            f"{_sqdist('d', 'c', features, center_features)}, c.{cid}"
            f") AS rn FROM {data_table} d, {working} c) ranked "
            f"WHERE rn = 1"
        )
    dist = (
        f"SELECT d.{key} AS pid, c.{cid} AS cid, "
        f"{_sqdist('d', 'c', features, center_features)} AS dd "
        f"FROM {data_table} d, {working} c"
    )
    mind = (
        f"SELECT pid, min(dd) AS md FROM ({dist}) dd1 GROUP BY pid"
    )
    return (
        f"SELECT dd2.pid AS pid, min(dd2.cid) AS cid "
        f"FROM ({dist}) dd2, ({mind}) mn "
        f"WHERE dd2.pid = mn.pid AND dd2.dd = mn.md "
        f"GROUP BY dd2.pid"
    )


def kmeans_iterate_sql(
    data_table: str,
    centers_table: str,
    features: list[str],
    iterations: int,
    key: str = "id",
    center_id: str = "cid",
    use_window: bool = False,
) -> str:
    """k-Means via the ITERATE construct (the *HyPer Iterate* series).

    ``use_window`` switches the assignment step to the window-function
    formulation (one distance evaluation instead of two)."""
    center_cols = [f"c{i}" for i in range(len(features))]
    init = (
        f"SELECT {center_id} AS cid, "
        + ", ".join(
            f"CAST({f} AS FLOAT) AS {c}"
            for f, c in zip(features, center_cols)
        )
        + f", 0 AS it FROM {centers_table}"
    )
    asg = _assignment_subquery(
        data_table, "iterate", key, "cid", features, center_cols,
        use_window,
    )
    averages = ", ".join(
        f"avg(d.{f}) AS {c}" for f, c in zip(features, center_cols)
    )
    step = (
        f"SELECT asg.cid AS cid, {averages}, min(m.nit) AS it "
        f"FROM ({asg}) asg, {data_table} d, "
        f"(SELECT min(it)+1 AS nit FROM iterate) m "
        f"WHERE asg.pid = d.{key} "
        f"GROUP BY asg.cid"
    )
    stop = f"SELECT 1 FROM iterate WHERE it >= {iterations}"
    selected = ", ".join(["cid"] + center_cols)
    return (
        f"SELECT {selected} FROM ITERATE(({init}), ({step}), ({stop})) "
        f"ORDER BY cid"
    )


def kmeans_recursive_sql(
    data_table: str,
    centers_table: str,
    features: list[str],
    iterations: int,
    key: str = "id",
    center_id: str = "cid",
) -> str:
    """k-Means via WITH RECURSIVE (the *HyPer SQL* series).

    Appending semantics: all rounds accumulate; the final SELECT picks
    the last round by its iteration counter."""
    center_cols = [f"c{i}" for i in range(len(features))]
    init = (
        f"SELECT {center_id} AS cid, "
        + ", ".join(
            f"CAST({f} AS FLOAT) AS {c}"
            for f, c in zip(features, center_cols)
        )
        + f", 0 AS it FROM {centers_table}"
    )
    asg = _assignment_subquery(
        data_table, "kmeans_r", key, "cid", features, center_cols
    )
    averages = ", ".join(
        f"avg(d.{f}) AS {c}" for f, c in zip(features, center_cols)
    )
    step = (
        f"SELECT asg.cid AS cid, {averages}, min(m.nit) AS it "
        f"FROM ({asg}) asg, {data_table} d, "
        f"(SELECT min(it)+1 AS nit FROM kmeans_r) m "
        f"WHERE asg.pid = d.{key} AND m.nit <= {iterations} "
        f"GROUP BY asg.cid"
    )
    columns = ", ".join(["cid"] + center_cols + ["it"])
    selected = ", ".join(["cid"] + center_cols)
    return (
        f"WITH RECURSIVE kmeans_r({columns}) AS "
        f"({init} UNION ALL {step}) "
        f"SELECT {selected} FROM kmeans_r WHERE it = {iterations} "
        f"ORDER BY cid"
    )
