"""Frequent itemset mining (a-priori) in SQL — layer 3.

The paper singles out a-priori as an algorithm that "works well in SQL"
(section 4.2): candidate generation and support counting are joins and
GROUP BYs. This driver runs the classic SQL formulation level by level
against a transactions table ``(tid, item)``:

* L1 — frequent single items: GROUP BY item, HAVING count >= minsup;
* Lk — self-join L(k-1) with the transaction table, extending each
  frequent itemset by a lexicographically larger frequent item, then
  count support per candidate.

Itemsets are represented relationally as k item columns in sorted
order, one row per itemset — no arrays needed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FrequentItemset:
    """One mined itemset with its absolute support."""

    items: tuple
    support: int


def _level_table(prefix: str, k: int) -> str:
    return f"{prefix}_l{k}"


def apriori(
    db,
    table: str,
    min_support: int,
    max_size: int = 3,
    tid: str = "tid",
    item: str = "item",
    keep_tables: bool = False,
) -> list[FrequentItemset]:
    """Mine frequent itemsets of size <= ``max_size``.

    ``min_support`` is the absolute transaction count. Intermediate
    level tables (``apriori_l1`` ...) are dropped afterwards unless
    ``keep_tables`` is set. Returns itemsets sorted by (size, items).
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    if max_size < 1:
        raise ValueError("max_size must be >= 1")

    prefix = "apriori"
    results: list[FrequentItemset] = []
    created: list[str] = []
    try:
        level1 = _level_table(prefix, 1)
        db.execute(f"DROP TABLE IF EXISTS {level1}")
        db.execute(
            f"CREATE TABLE {level1} AS "
            f"SELECT {item} AS i1, count(DISTINCT {tid}) AS support "
            f"FROM {table} GROUP BY {item} "
            f"HAVING count(DISTINCT {tid}) >= {min_support}"
        )
        created.append(level1)
        for i1, support in db.execute(
            f"SELECT i1, support FROM {level1} ORDER BY i1"
        ).rows:
            results.append(FrequentItemset((i1,), support))

        for k in range(2, max_size + 1):
            prev = _level_table(prefix, k - 1)
            level = _level_table(prefix, k)
            prev_items = [f"i{j}" for j in range(1, k)]
            # Extend every frequent (k-1)-itemset by a larger frequent
            # item co-occurring in the same transaction, then count the
            # distinct supporting transactions per candidate.
            tx_match = " AND ".join(
                f"t{j}.{item} = p.i{j}" for j in range(1, k)
            )
            tx_tables = ", ".join(
                f"{table} t{j}" for j in range(1, k + 1)
            )
            same_tid = " AND ".join(
                f"t{j}.{tid} = t1.{tid}" for j in range(2, k + 1)
            )
            group_cols = ", ".join(
                [f"p.i{j}" for j in range(1, k)] + [f"t{k}.{item}"]
            )
            select_cols = ", ".join(
                [f"p.i{j} AS i{j}" for j in range(1, k)]
                + [f"t{k}.{item} AS i{k}"]
            )
            frequent_last = (
                f"t{k}.{item} IN (SELECT i1 FROM {level1})"
            )
            db.execute(f"DROP TABLE IF EXISTS {level}")
            db.execute(
                f"CREATE TABLE {level} AS "
                f"SELECT {select_cols}, "
                f"count(DISTINCT t1.{tid}) AS support "
                f"FROM {prev} p, {tx_tables} "
                f"WHERE {tx_match} AND {same_tid} "
                f"AND t{k}.{item} > p.i{k - 1} "
                f"AND {frequent_last} "
                f"GROUP BY {group_cols} "
                f"HAVING count(DISTINCT t1.{tid}) >= {min_support}"
            )
            created.append(level)
            cols = ", ".join(f"i{j}" for j in range(1, k + 1))
            rows = db.execute(
                f"SELECT {cols}, support FROM {level} ORDER BY {cols}"
            ).rows
            if not rows:
                break
            for row in rows:
                results.append(FrequentItemset(tuple(row[:-1]), row[-1]))
    finally:
        if not keep_tables:
            for name in created:
                db.execute(f"DROP TABLE IF EXISTS {name}")
    return results
