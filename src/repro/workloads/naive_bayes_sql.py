"""Naive Bayes training expressed in pure SQL (layer 3).

Training is a single (non-iterative) aggregation pass per attribute:
per class, the tuple count, mean, and population standard deviation,
plus the Laplace-smoothed prior PR(c) = (|c| + 1)/(|D| + |C|)
(section 6.2). The output relation matches the training operator's
layout (class, attribute, prior, mean, stddev, count), so the same
NAIVE_BAYES_PREDICT post-processing applies to either.

One UNION ALL branch per attribute: the straightforward SQL form scans
the training relation d times where the operator makes a single pass —
part of the layer-3 vs layer-4 gap the evaluation measures.
"""

from __future__ import annotations


def naive_bayes_train_sql(
    train_table: str,
    label: str,
    features: list[str],
) -> str:
    branches = []
    for feature in features:
        branches.append(
            f"SELECT {label} AS class, '{feature}' AS attribute, "
            f"(count(*) + 1.0) / (min(t.total) + min(t.nclasses)) AS prior, "
            f"avg({feature}) AS mean, "
            f"stddev_pop({feature}) AS stddev, "
            f"count(*) AS cnt "
            f"FROM {train_table}, totals t "
            f"GROUP BY {label}"
        )
    union = " UNION ALL ".join(branches)
    return (
        f"WITH totals AS (SELECT count(*) AS total, "
        f"count(DISTINCT {label}) AS nclasses FROM {train_table}) "
        f"{union} ORDER BY class, attribute"
    )
