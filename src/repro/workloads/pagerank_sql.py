"""PageRank expressed in pure SQL (layer 3).

One iteration is a sparse matrix-vector multiplication written
relationally: join the rank relation with the edge table and the
out-degree relation, then GROUP BY the edge target. As the paper notes
(section 8.4.2), this formulation is dominated by building and probing
hash-join tables every round — in contrast with the operator's CSR index.

Both variants expect an edge table with integer (source, target)
columns. Every vertex must have at least one outgoing and one incoming
edge (true for the undirected LDBC-style graphs of the evaluation, where
each edge is stored in both directions); rank mass from dangling
vertices is not redistributed.
"""

from __future__ import annotations


def _vertices(edges_table: str, src: str, dst: str) -> str:
    return (
        f"SELECT {src} AS v FROM {edges_table} "
        f"UNION SELECT {dst} AS v FROM {edges_table}"
    )


def pagerank_iterate_sql(
    edges_table: str,
    damping: float,
    iterations: int,
    src: str = "src",
    dst: str = "dest",
) -> str:
    """PageRank via the ITERATE construct (the *HyPer Iterate* series)."""
    vertices = _vertices(edges_table, src, dst)
    init = (
        f"SELECT vs.v AS v, 1.0 / min(nn.cnt) AS rank, 0 AS it "
        f"FROM ({vertices}) vs, n nn GROUP BY vs.v"
    )
    step = (
        f"SELECT e.{dst} AS v, "
        f"(1.0 - {damping}) / min(m.cnt) "
        f"+ {damping} * sum(r.rank / dg.outdeg) AS rank, "
        f"min(m.nit) AS it "
        f"FROM iterate r, {edges_table} e, deg dg, "
        f"(SELECT min(it)+1 AS nit, min(nn.cnt) AS cnt "
        f" FROM iterate, n nn) m "
        f"WHERE r.v = e.{src} AND e.{src} = dg.v "
        f"GROUP BY e.{dst}"
    )
    stop = f"SELECT 1 FROM iterate WHERE it >= {iterations}"
    return (
        f"WITH deg AS (SELECT {src} AS v, count(*) AS outdeg "
        f"             FROM {edges_table} GROUP BY {src}), "
        f"n AS (SELECT count(*) AS cnt FROM ({vertices}) vv) "
        f"SELECT v, rank FROM ITERATE(({init}), ({step}), ({stop})) "
        f"ORDER BY v"
    )


def pagerank_recursive_sql(
    edges_table: str,
    damping: float,
    iterations: int,
    src: str = "src",
    dst: str = "dest",
) -> str:
    """PageRank via WITH RECURSIVE (the *HyPer SQL* series): every
    round's (vertex, rank) tuples accumulate and carry the iteration
    counter, the memory overhead of section 5.1."""
    vertices = _vertices(edges_table, src, dst)
    init = (
        f"SELECT vs.v AS v, 1.0 / min(nn.cnt) AS rank, 0 AS it "
        f"FROM ({vertices}) vs, n nn GROUP BY vs.v"
    )
    step = (
        f"SELECT e.{dst} AS v, "
        f"(1.0 - {damping}) / min(m.cnt) "
        f"+ {damping} * sum(r.rank / dg.outdeg) AS rank, "
        f"min(m.nit) AS it "
        f"FROM ranks_r r, {edges_table} e, deg dg, "
        f"(SELECT min(it)+1 AS nit, min(nn.cnt) AS cnt "
        f" FROM ranks_r, n nn) m "
        f"WHERE r.v = e.{src} AND e.{src} = dg.v AND m.nit <= {iterations} "
        f"GROUP BY e.{dst}"
    )
    return (
        f"WITH RECURSIVE "
        f"deg AS (SELECT {src} AS v, count(*) AS outdeg "
        f"        FROM {edges_table} GROUP BY {src}), "
        f"n AS (SELECT count(*) AS cnt FROM ({vertices}) vv), "
        f"ranks_r(v, rank, it) AS ({init} UNION ALL {step}) "
        f"SELECT v, rank FROM ranks_r WHERE it = {iterations} "
        f"ORDER BY v"
    )
