"""Per-statement resource governance (docs/robustness.md).

A :class:`QueryContext` travels with one statement through the whole
execution stack: every operator calls :meth:`QueryContext.check` at
morsel / iteration-round boundaries (so cancellation latency is bounded
by one morsel) and :meth:`QueryContext.reserve` when it materialises
numpy-backed state (pipeline breakers: hash tables, sort buffers, join
sides, working tables, analytics matrices). Three budgets are enforced:

* a **deadline** (``timeout_ms``) checked against the monotonic clock,
* a **cooperative cancel token** settable from any thread
  (:meth:`repro.api.database.Database.cancel`),
* a **memory budget** (``memory_budget_mb``) over the live accounted
  bytes of materialised operator state.

Violations raise the typed family in :mod:`repro.errors`
(:class:`~repro.errors.QueryTimeout`,
:class:`~repro.errors.QueryCancelled`,
:class:`~repro.errors.MemoryBudgetExceeded`); each carries the
governor's final :meth:`report`. The chaos harness
(:mod:`repro.testing.chaos`) hooks the same two entry points to inject
deterministic faults.

This module deliberately imports nothing from ``exec``/``api`` so it
can be used anywhere in the engine without cycles.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from .errors import MemoryBudgetExceeded, QueryCancelled, QueryTimeout


class CancelToken:
    """A thread-safe cooperative cancellation flag.

    ``cancel()`` may be called from any thread; the running statement
    observes it at its next checkpoint. Tokens are single-use — a new
    statement gets a new token.
    """

    __slots__ = ("_event",)

    def __init__(self):
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class QueryContext:
    """The per-statement governor: deadline, cancel token, memory budget,
    and the live/peak byte ledger.

    ``check``/``reserve``/``release`` are called from operator code on
    the coordinator *and* on worker threads (parallel morsels), so the
    byte ledger is lock-protected. ``verdict`` records how the statement
    ended: ``"ok"`` (still running or finished), ``"cancelled"``,
    ``"timeout"``, ``"oom"``, or ``"injected_fault"``.
    """

    def __init__(
        self,
        timeout_ms: Optional[float] = None,
        memory_budget_bytes: Optional[int] = None,
        cancel_token: Optional[CancelToken] = None,
        chaos: Optional[object] = None,
    ):
        self.timeout_ms = timeout_ms
        self.memory_budget_bytes = memory_budget_bytes
        self.cancel_token = cancel_token or CancelToken()
        #: Optional :class:`repro.testing.chaos.ChaosInjector`; consulted
        #: at every checkpoint and reservation.
        self.chaos = chaos
        self.started = time.monotonic()
        self.deadline: Optional[float] = (
            self.started + timeout_ms / 1e3
            if timeout_ms is not None and timeout_ms > 0
            else None
        )
        self._lock = threading.Lock()
        self.live_bytes = 0
        self.peak_bytes = 0
        self.checkpoints = 0
        self.verdict = "ok"

    # -- checkpoints ---------------------------------------------------------

    def check(self, where: str = "") -> None:
        """A cooperative checkpoint: raises the matching governor error
        if the statement was cancelled or is past its deadline. Called
        at every morsel / iteration-round boundary."""
        with self._lock:
            self.checkpoints += 1
        if self.chaos is not None:
            self.chaos.on_checkpoint(self, where)
        if self.cancel_token.cancelled:
            raise self._fail(
                "cancelled",
                QueryCancelled(
                    f"query cancelled at {where or 'checkpoint'} "
                    f"(checkpoint {self.checkpoints})"
                ),
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise self._fail(
                "timeout",
                QueryTimeout(
                    f"query exceeded timeout of {self.timeout_ms:g}ms "
                    f"at {where or 'checkpoint'}"
                ),
            )

    # -- memory ledger -------------------------------------------------------

    def reserve(self, nbytes: int, where: str = "") -> int:
        """Account ``nbytes`` of materialised operator state; raises
        :class:`MemoryBudgetExceeded` when the live total passes the
        budget. Returns ``nbytes`` so call sites can remember what to
        :meth:`release`."""
        if self.chaos is not None:
            self.chaos.on_alloc(self, nbytes, where)
        with self._lock:
            self.live_bytes += nbytes
            if self.live_bytes > self.peak_bytes:
                self.peak_bytes = self.live_bytes
            live = self.live_bytes
        if (
            self.memory_budget_bytes is not None
            and live > self.memory_budget_bytes
        ):
            raise self._fail(
                "oom",
                MemoryBudgetExceeded(
                    f"operator memory {live} bytes exceeds budget of "
                    f"{self.memory_budget_bytes} bytes at "
                    f"{where or 'allocation'}"
                ),
            )
        return nbytes

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` previously :meth:`reserve`-d to the budget."""
        with self._lock:
            self.live_bytes -= nbytes
            if self.live_bytes < 0:
                self.live_bytes = 0

    # -- outcome -------------------------------------------------------------

    def _fail(self, verdict: str, exc: Exception) -> Exception:
        """Stamp the verdict and attach the report to ``exc``; returns
        the exception for the caller to raise."""
        self.verdict = verdict
        report = self.report()
        if hasattr(exc, "report"):
            exc.report = report
        exc.governor = report
        return exc

    def report(self) -> dict:
        """The governor's state as a plain dict (rendered by
        ``explain_analyze`` and attached to governor errors)."""
        with self._lock:
            live = self.live_bytes
            peak = self.peak_bytes
            checkpoints = self.checkpoints
        return {
            "verdict": self.verdict,
            "checkpoints": checkpoints,
            "elapsed_ms": (time.monotonic() - self.started) * 1e3,
            "peak_bytes": peak,
            "live_bytes": live,
            "timeout_ms": self.timeout_ms,
            "memory_budget_bytes": self.memory_budget_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"QueryContext(verdict={self.verdict!r}, "
            f"checkpoints={self.checkpoints}, "
            f"peak_bytes={self.peak_bytes})"
        )
