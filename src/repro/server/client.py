"""A blocking client for the repro wire protocol.

One :class:`Client` is one server session: it connects on
construction, speaks request/response frames over a single socket, and
re-raises server-side failures as the *same* typed exceptions the
embedded engine raises (``QueryTimeout`` stays ``QueryTimeout`` across
the wire, with ``.wire_code`` recording the frame's error code).

Cancellation is out-of-band by design — the session's connection is
blocked waiting for its query response — so :meth:`cancel` opens a
short second connection and sends ``{"op": "cancel", "session": ...}``
from there (typically from another thread).
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Iterator, Optional, Sequence

from ..errors import ReproError
from .protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    raise_for_error,
    read_frame,
)


class ServerError(ReproError):
    """A connection-level failure talking to the server (refused,
    dropped mid-response, unexpected frame) — distinct from the typed
    engine errors, which re-raise as themselves."""


class RemoteResult:
    """The client-side view of one statement's result frame: the same
    rows/columns/types/rowcount surface as the embedded
    :class:`~repro.api.result.QueryResult`, with rows as tuples."""

    __slots__ = ("columns", "rows", "types", "rowcount", "in_txn")

    def __init__(self, payload: dict):
        self.columns: list[str] = list(payload.get("columns") or [])
        self.rows: list[tuple] = [
            tuple(row) for row in payload.get("rows") or []
        ]
        self.types: list[str] = list(payload.get("types") or [])
        self.rowcount: int = int(payload.get("rowcount") or 0)
        self.in_txn: bool = bool(payload.get("in_txn"))

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        row = self.first()
        return row[0] if row else None

    def __repr__(self) -> str:
        return (
            f"RemoteResult(columns={self.columns!r}, "
            f"rows={len(self.rows)}, rowcount={self.rowcount})"
        )


class Client:
    """A blocking session over one server connection.

    Usage::

        with Client("127.0.0.1", 7474, tenant="analytics") as c:
            c.execute("CREATE TABLE t (x INTEGER)")
            c.execute("INSERT INTO t VALUES (1), (2)")
            total = c.query("SELECT SUM(x) FROM t").scalar()
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7474,
        tenant: Optional[str] = None,
        connect_timeout: float = 10.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = int(port)
        self.max_frame_bytes = max_frame_bytes
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._fh = None
        self.session_id: Optional[str] = None
        self.protocol: Optional[str] = None
        try:
            self._sock = socket.create_connection(
                (host, self.port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ServerError(
                f"cannot connect to {host}:{self.port}: {exc}"
            ) from exc
        self._sock.settimeout(None)
        self._fh = self._sock.makefile("rwb")
        request: dict = {"op": "connect"}
        if tenant is not None:
            request["tenant"] = tenant
        hello = self._roundtrip(request)
        self.session_id = hello["session"]
        self.protocol = hello.get("protocol")

    # -- plumbing ----------------------------------------------------------

    def _roundtrip(self, request: dict) -> dict:
        with self._lock:
            fh = self._fh
            if fh is None:
                raise ServerError("client is closed")
            try:
                fh.write(encode_frame(request))
                fh.flush()
                response = read_frame(fh, self.max_frame_bytes)
            except (OSError, ValueError) as exc:
                raise ServerError(
                    f"connection to {self.host}:{self.port} lost: {exc}"
                ) from exc
        if response is None:
            raise ServerError(
                "server closed the connection mid-request"
            )
        raise_for_error(response)
        return response

    # -- statements --------------------------------------------------------

    def query(
        self,
        sql: str,
        params: Optional[Sequence] = None,
        *,
        timeout_ms: Optional[float] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> RemoteResult:
        """Run one statement and return its result. Blocks until the
        server responds (or raises the typed engine error)."""
        request: dict = {"op": "query", "sql": sql}
        if params is not None:
            request["params"] = list(params)
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        if memory_budget_mb is not None:
            request["memory_budget_mb"] = memory_budget_mb
        return RemoteResult(self._roundtrip(request))

    #: DML/DDL reads the same path; the alias mirrors the embedded API.
    execute = query

    def begin(self) -> RemoteResult:
        return self.execute("BEGIN")

    def commit(self) -> RemoteResult:
        return self.execute("COMMIT")

    def rollback(self) -> RemoteResult:
        return self.execute("ROLLBACK")

    # -- out-of-band ops ---------------------------------------------------

    def cancel(self) -> bool:
        """Cancel this session's in-flight statement from a *second*
        connection (the primary one is blocked on the response). True
        when the server signalled an active statement."""
        if self.session_id is None:
            return False
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=10.0
            ) as sock:
                fh = sock.makefile("rwb")
                fh.write(
                    encode_frame(
                        {"op": "cancel", "session": self.session_id}
                    )
                )
                fh.flush()
                response = read_frame(fh, self.max_frame_bytes)
        except OSError as exc:
            raise ServerError(f"cancel connection failed: {exc}") from exc
        if response is None:
            raise ServerError("server dropped the cancel connection")
        raise_for_error(response)
        return bool(response.get("cancelled"))

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def metrics_text(self) -> str:
        """The Prometheus exposition, over the protocol (the HTTP
        ``GET /metrics`` path serves the same text)."""
        return str(self._roundtrip({"op": "metrics"}).get("metrics", ""))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Send ``close`` (best-effort) and drop the connection; the
        server rolls back any transaction left open. Idempotent."""
        with self._lock:
            fh, self._fh = self._fh, None
            sock, self._sock = self._sock, None
        if fh is not None:
            try:
                fh.write(encode_frame({"op": "close"}))
                fh.flush()
                read_frame(fh, self.max_frame_bytes)
            except (OSError, ValueError, ReproError):
                pass
            try:
                fh.close()
            except (OSError, ValueError):
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def abandon(self) -> None:
        """Drop the socket *without* the close handshake — simulates a
        client crash; the server must roll back for us (tested)."""
        with self._lock:
            fh, self._fh = self._fh, None
            sock, self._sock = self._sock, None
        for closeable in (fh, sock):
            if closeable is not None:
                try:
                    closeable.close()
                except (OSError, ValueError):
                    pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._sock is None else "open"
        return (
            f"Client({self.host}:{self.port}, "
            f"session={self.session_id!r}, {state})"
        )
