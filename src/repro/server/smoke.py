"""``make server-smoke`` — the end-to-end serving battery.

Starts a real server on an ephemeral port and drives it the way the
acceptance bar demands:

1. **Concurrent correctness**: 8 client sessions run a mixed
   DML / query / analytics workload — private per-session tables plus
   shared read-only aggregates plus an ITERATE statement — and the
   final database state must equal a serial twin's, bit for bit.
2. **Backpressure**: with one executor and a depth-0 queue, a blocking
   UDF wedges the executor and the overflow statement must come back
   as a typed ``ADMISSION_REJECTED`` error — never a hang.
3. **Observability**: an HTTP ``GET /metrics`` scrape of the protocol
   port must report the server metric families.
4. **Clean shutdown**, under a hard watchdog (the process ``os._exit``s
   with status 2 if the whole battery overruns its deadline, so a hung
   server can never hang CI).

Exit status 0 on success, 1 on assertion failure, 2 on watchdog.
"""

from __future__ import annotations

import os
import sys
import threading
import time

from ..api.database import Database
from ..errors import AdmissionRejected
from .client import Client
from .server import Server
from .session import TenantBudget

#: Hard wall-clock ceiling for the whole battery.
DEADLINE_S = float(os.environ.get("REPRO_SMOKE_DEADLINE", "120"))

N_CLIENTS = 8
ROWS_PER_CLIENT = 200


def log(msg: str) -> None:
    print(f"[server-smoke] {msg}", flush=True)


def start_watchdog() -> threading.Event:
    """Kill the process (exit 2) if the battery overruns the deadline —
    'never hangs' is part of the acceptance bar, so the enforcement
    cannot rely on the thing being tested."""
    done = threading.Event()

    def watch() -> None:
        if not done.wait(DEADLINE_S):
            print(
                f"[server-smoke] WATCHDOG: battery exceeded "
                f"{DEADLINE_S:.0f}s, killing process",
                file=sys.stderr,
                flush=True,
            )
            os._exit(2)

    threading.Thread(target=watch, name="smoke-watchdog", daemon=True).start()
    return done


def client_script(i: int) -> list[str]:
    """Client ``i``'s statement sequence. Private table + shared reads,
    so any interleaving across clients is serializable and the serial
    twin is a valid oracle."""
    rows = ", ".join(
        f"({k}, {(k * 7 + i) % 101})" for k in range(ROWS_PER_CLIENT)
    )
    return [
        f"CREATE TABLE smoke_{i} (k INTEGER, v INTEGER)",
        f"INSERT INTO smoke_{i} VALUES {rows}",
        "BEGIN",
        f"UPDATE smoke_{i} SET v = v + 1000 WHERE k < 50",
        "COMMIT",
        "BEGIN",
        f"DELETE FROM smoke_{i} WHERE k >= 150",
        "ROLLBACK",  # the delete must NOT stick
        f"DELETE FROM smoke_{i} WHERE v % 10 = {i % 10}",
        f"SELECT count(*), sum(v) FROM smoke_{i}",
        "SELECT count(*), sum(w) FROM shared_fact",  # shared read-only
        # A little analytics: iterate a scalar past a threshold.
        "SELECT * FROM ITERATE((SELECT 1 AS x),"
        " (SELECT x * 2 FROM iterate),"
        f" (SELECT x FROM iterate WHERE x >= {64 << (i % 4)}))",
    ]


def run_script_remote(host: str, port: int, i: int, out: dict) -> None:
    try:
        with Client(host, port, tenant="smoke") as client:
            results = []
            for sql in client_script(i):
                result = client.execute(sql)
                if result.rows:
                    results.append(result.rows)
            out[i] = results
    except Exception as exc:  # noqa: BLE001 — surfaced by the caller
        out[i] = exc


def table_state(db: Database, table: str) -> list[tuple]:
    return db.execute(f"SELECT * FROM {table} ORDER BY k, v").rows


def seed_shared(db: Database) -> None:
    db.execute("CREATE TABLE shared_fact (f INTEGER, w INTEGER)")
    rows = ", ".join(f"({j}, {j * j % 997})" for j in range(500))
    db.execute(f"INSERT INTO shared_fact VALUES {rows}")


def phase_concurrent() -> None:
    log(f"phase 1: {N_CLIENTS} concurrent sessions vs serial twin")
    db = Database()
    seed_shared(db)
    server = Server(db, executors=4, queue_depth=64, max_sessions=32)
    server.start()
    host, port = server.address
    try:
        outcomes: dict = {}
        threads = [
            threading.Thread(
                target=run_script_remote, args=(host, port, i, outcomes)
            )
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=DEADLINE_S)
        failures = {
            i: v for i, v in outcomes.items() if isinstance(v, Exception)
        }
        assert not failures, f"client sessions failed: {failures}"
        assert len(outcomes) == N_CLIENTS, (
            f"only {len(outcomes)}/{N_CLIENTS} sessions completed"
        )

        # The serial twin: same scripts, one embedded session, in order.
        twin = Database()
        seed_shared(twin)
        twin_results: dict = {}
        for i in range(N_CLIENTS):
            results = []
            for sql in client_script(i):
                result = twin.execute(sql)
                if result.rows:
                    results.append(result.rows)
            twin_results[i] = results

        for i in range(N_CLIENTS):
            assert outcomes[i] == twin_results[i], (
                f"client {i}: remote results diverge from serial twin\n"
                f"remote: {outcomes[i]}\ntwin:   {twin_results[i]}"
            )
            remote_state = table_state(db, f"smoke_{i}")
            twin_state = table_state(twin, f"smoke_{i}")
            assert remote_state == twin_state, (
                f"table smoke_{i}: final state diverges from twin"
            )
        twin.close()
        log("phase 1 OK: states and results identical to serial twin")

        # Scrape /metrics over plain HTTP on the same port.
        log("phase 3: HTTP /metrics scrape")
        body = http_get_metrics(host, port)
        for needle in (
            "server_sessions_active",
            "server_admission_queued_total",
            "server_requests_total",
            "server_queue_wait_seconds",
        ):
            assert needle in body, f"/metrics missing {needle}"
        log("phase 3 OK: server metric families exported")
    finally:
        server.stop()
        db.close()


def http_get_metrics(host: str, port: int) -> str:
    import socket

    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(
            f"GET /metrics HTTP/1.0\r\nHost: {host}\r\n\r\n".encode()
        )
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    assert b"200 OK" in head.split(b"\r\n", 1)[0], head
    return body.decode("utf-8")


def phase_backpressure() -> None:
    log("phase 2: admission backpressure (1 executor, depth-0 queue)")
    db = Database()
    entered = threading.Event()
    release = threading.Event()

    def block(x):
        entered.set()
        release.wait(DEADLINE_S)
        return x

    db.create_function("smoke_block", block, "INTEGER", arity=1)
    server = Server(db, executors=1, queue_depth=0, max_sessions=8)
    server.start()
    host, port = server.address
    clients = [Client(host, port) for _ in range(3)]
    try:
        wedge_done: dict = {}

        def wedge() -> None:
            try:
                wedge_done["result"] = clients[0].query(
                    "SELECT smoke_block(1)"
                ).scalar()
            except Exception as exc:  # noqa: BLE001
                wedge_done["result"] = exc

        wedge_thread = threading.Thread(target=wedge)
        wedge_thread.start()
        assert entered.wait(10.0), "blocking UDF never started"

        # Executor is wedged; with queue_depth=0 the next statement must
        # bounce as a typed AdmissionRejected, immediately.
        t0 = time.perf_counter()
        try:
            clients[1].query("SELECT 1")
        except AdmissionRejected as exc:
            elapsed = time.perf_counter() - t0
            assert elapsed < 5.0, f"rejection took {elapsed:.1f}s"
            assert getattr(exc, "wire_code", None) == "ADMISSION_REJECTED"
            log(f"phase 2 OK: typed rejection in {elapsed * 1000:.0f}ms")
        else:
            raise AssertionError(
                "second statement ran despite a wedged executor"
            )

        release.set()
        wedge_thread.join(timeout=10.0)
        assert wedge_done.get("result") == 1, wedge_done

        # The surviving sessions stay usable after the rejection.
        for client in clients[1:]:
            assert client.query("SELECT 41 + 1").scalar() == 42
        log("phase 2 OK: rejected client recovered, sessions usable")
    finally:
        for client in clients:
            client.close()
        release.set()
        server.stop()
        db.close()


def main() -> int:
    done = start_watchdog()
    t0 = time.perf_counter()
    try:
        phase_concurrent()
        phase_backpressure()
    except AssertionError as exc:
        log(f"FAILED: {exc}")
        return 1
    finally:
        done.set()
    log(f"all phases passed in {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
