"""The wire protocol: length-prefixed JSON frames with typed errors.

Every message — request or response — is one *frame*:

* a 4-byte big-endian unsigned length prefix,
* followed by exactly that many bytes of UTF-8 JSON encoding one
  object, serialized canonically (sorted keys, no whitespace).

Canonical serialization makes frames byte-stable, so the golden tests
in ``tests/test_server.py`` can assert exact bytes and the protocol
cannot drift silently. Frames larger than :data:`MAX_FRAME_BYTES` are
rejected with a ``FRAME_TOO_LARGE`` error frame; bytes that do not
decode to a JSON object are rejected with ``MALFORMED_FRAME``.

Requests carry an ``op`` field::

    {"op": "connect", "tenant": "analytics"}
    {"op": "query", "sql": "SELECT 1", "params": [],
     "timeout_ms": 500.0, "memory_budget_mb": 64.0}
    {"op": "cancel", "session": "s-1"}
    {"op": "metrics"}
    {"op": "ping"}
    {"op": "close"}

Responses are ``{"ok": true, ...}`` on success, or a typed error frame
on failure::

    {"ok": false, "error": {"code": "QUERY_TIMEOUT",
                            "type": "QueryTimeout",
                            "message": "..."}}

Error ``code`` values map 1:1 from the engine's exception family
(:mod:`repro.errors`); :func:`error_code_of` maps an exception to its
code and :data:`CODE_TO_ERROR` maps a code back to the exception class
the client re-raises. Governor errors additionally carry the governor's
final report under ``error.governor``.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Optional, Union

from ..errors import (
    AdmissionRejected,
    AnalyticsError,
    BindError,
    CatalogError,
    ExecutionError,
    InjectedFault,
    IterationLimitError,
    MemoryBudgetExceeded,
    ParseError,
    PlanError,
    ProtocolError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResourceGovernorError,
    SerializationConflict,
    TransactionError,
    UDFError,
    WorkerCrashError,
)

#: Bumped on incompatible wire changes; echoed in the connect response.
PROTOCOL_VERSION = "repro-wire-1"

#: Hard ceiling on one frame's payload (requests *and* responses).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: The length prefix: 4-byte big-endian unsigned.
_PREFIX = struct.Struct(">I")

#: Exception class -> wire error code, most specific first (the first
#: ``isinstance`` match wins, so subclasses precede their bases).
_ERROR_CODES: tuple[tuple[type, str], ...] = (
    (QueryTimeout, "QUERY_TIMEOUT"),
    (QueryCancelled, "QUERY_CANCELLED"),
    (MemoryBudgetExceeded, "MEMORY_BUDGET_EXCEEDED"),
    (ResourceGovernorError, "RESOURCE_GOVERNOR"),
    (InjectedFault, "INJECTED_FAULT"),
    (IterationLimitError, "ITERATION_LIMIT"),
    (WorkerCrashError, "WORKER_CRASH"),
    (AnalyticsError, "ANALYTICS_ERROR"),
    (ExecutionError, "EXECUTION_ERROR"),
    (SerializationConflict, "SERIALIZATION_CONFLICT"),
    (TransactionError, "TRANSACTION_ERROR"),
    (ParseError, "PARSE_ERROR"),
    (BindError, "BIND_ERROR"),
    (PlanError, "PLAN_ERROR"),
    (CatalogError, "CATALOG_ERROR"),
    (UDFError, "UDF_ERROR"),
    (AdmissionRejected, "ADMISSION_REJECTED"),
    (ProtocolError, "PROTOCOL_ERROR"),
    (ReproError, "ENGINE_ERROR"),
)

#: Wire error code -> the exception class a client re-raises. Protocol-
#: level codes share :class:`ProtocolError`; unknown codes fall back to
#: :class:`ReproError` so old clients survive new server codes.
CODE_TO_ERROR: dict[str, type] = {
    code: exc_type for exc_type, code in _ERROR_CODES
}
CODE_TO_ERROR.update(
    {
        "MALFORMED_FRAME": ProtocolError,
        "FRAME_TOO_LARGE": ProtocolError,
        "SESSION_LIMIT": AdmissionRejected,
        "INTERNAL_ERROR": ReproError,
    }
)


def error_code_of(exc: BaseException) -> str:
    """The wire code for an exception (``INTERNAL_ERROR`` for anything
    outside the engine's typed family)."""
    for exc_type, code in _ERROR_CODES:
        if isinstance(exc, exc_type):
            return code
    return "INTERNAL_ERROR"


def error_payload(
    exc: Optional[BaseException] = None,
    code: Optional[str] = None,
    message: Optional[str] = None,
) -> dict:
    """A typed error frame. Pass an exception (code and message are
    derived, governor reports ride along) or an explicit code+message
    for protocol-level failures that have no exception yet."""
    if exc is not None:
        code = code or error_code_of(exc)
        message = message if message is not None else str(exc)
        error: dict = {
            "code": code,
            "type": type(exc).__name__,
            "message": message,
        }
        report = getattr(exc, "report", None)
        if isinstance(exc, ResourceGovernorError) and report:
            error["governor"] = _json_safe(report)
    else:
        error = {
            "code": code or "INTERNAL_ERROR",
            "type": CODE_TO_ERROR.get(
                code or "INTERNAL_ERROR", ReproError
            ).__name__,
            "message": message or "",
        }
    return {"error": error, "ok": False}


def raise_for_error(payload: dict) -> None:
    """Re-raise the typed engine error carried by an error frame (the
    client side of :func:`error_payload`); no-op on success frames."""
    if payload.get("ok", False):
        return
    error = payload.get("error") or {}
    code = error.get("code", "INTERNAL_ERROR")
    exc_type = CODE_TO_ERROR.get(code, ReproError)
    message = error.get("message", "server error")
    if issubclass(exc_type, ResourceGovernorError):
        exc = exc_type(message, report=error.get("governor"))
    elif exc_type is ParseError:
        exc = ParseError(message)
    else:
        exc = exc_type(message)
    exc.wire_code = code
    raise exc


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def dump_payload(payload: dict) -> bytes:
    """Canonical JSON bytes of one message (sorted keys, compact
    separators) — the byte-stable form golden tests pin down."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_frame(payload: dict) -> bytes:
    """One wire frame: length prefix + canonical JSON payload."""
    body = dump_payload(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _PREFIX.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse one frame body; raises :class:`ProtocolError` when the
    bytes are not a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


def read_exact(stream: BinaryIO, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes from a socket file; None on clean EOF
    at a frame boundary, :class:`ProtocolError` on a torn frame."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} "
                f"bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    stream: BinaryIO, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame; None on clean EOF. Raises
    :class:`ProtocolError` on an oversized or malformed frame."""
    prefix = read_exact(stream, _PREFIX.size)
    if prefix is None:
        return None
    (length,) = _PREFIX.unpack(prefix)
    if length > max_bytes:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the "
            f"{max_bytes}-byte limit"
        )
    body = read_exact(stream, length)
    if body is None:
        raise ProtocolError("connection closed before frame body")
    return decode_payload(body)


# ---------------------------------------------------------------------------
# result serialization
# ---------------------------------------------------------------------------


def _json_safe(value):
    """Recursively coerce numpy scalars and other non-JSON types to
    plain Python values (strings as a last resort)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    # numpy scalars expose item(); anything else is stringified.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_safe(item())
        except (TypeError, ValueError):
            pass
    return str(value)


def result_payload(result) -> dict:
    """The success frame for one executed statement: column names and
    type names, row tuples as JSON arrays, and the DML rowcount.

    Non-finite floats (NaN, ±Inf) are emitted as bare JSON literals —
    both ends of this protocol are Python's ``json`` module, which
    round-trips them."""
    return {
        "columns": list(result.columns),
        "ok": True,
        "rowcount": result.rowcount,
        "rows": [
            [_json_safe(v) for v in row] for row in result.rows
        ],
        "types": [str(t) for t in result.types],
    }
