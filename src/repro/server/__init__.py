"""repro.server — a multi-session database server over one engine.

The embedded :class:`~repro.api.database.Database` is a single-process
session; this package turns it into a *serving* stack (docs/server.md):

* :mod:`repro.server.protocol` — a length-prefixed JSON wire protocol
  (``connect`` / ``query`` / ``cancel`` / ``close`` / ``metrics``) with
  typed error frames mapped from the engine's exception family;
* :mod:`repro.server.session` — per-session state: its own transaction
  over the shared snapshot-isolation substrate, per-tenant governor
  budgets, and a per-request cancel token;
* :mod:`repro.server.server` — the threaded socket server: one reader
  thread per connection, a bounded admission queue with backpressure
  feeding a fixed executor pool, and an HTTP ``GET /metrics`` endpoint
  on the same port reusing the Prometheus exporter;
* :mod:`repro.server.client` — a blocking client speaking the protocol
  and re-raising typed engine errors.

Run one from the command line::

    python -m repro.server --port 7474

and smoke-test the whole stack (``make server-smoke``)::

    python -m repro.server.smoke
"""

from .client import Client, RemoteResult, ServerError
from .protocol import PROTOCOL_VERSION, encode_frame, read_frame
from .server import Server, ServerConfig, TenantBudget

__all__ = [
    "Client",
    "RemoteResult",
    "ServerError",
    "Server",
    "ServerConfig",
    "TenantBudget",
    "PROTOCOL_VERSION",
    "encode_frame",
    "read_frame",
]
