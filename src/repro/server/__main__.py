"""``python -m repro.server`` — run a standalone server.

Binds, prints the listening address (and the /metrics URL), and serves
until interrupted. Engine knobs that matter for serving — workers,
encoding, WAL path, default governor budgets — are exposed as flags;
everything else keeps the embedded defaults.
"""

from __future__ import annotations

import argparse
import sys
import threading

from ..api.database import Database
from .server import Server
from .session import TenantBudget


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve one repro database to many sessions.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7474,
        help="0 picks an ephemeral port (printed on startup)",
    )
    parser.add_argument("--max-sessions", type=int, default=64)
    parser.add_argument(
        "--queue-depth", type=int, default=32,
        help="statements waiting beyond the executors before "
        "ADMISSION_REJECTED backpressure",
    )
    parser.add_argument("--executors", type=int, default=4)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="engine worker-pool size (None = engine default)",
    )
    parser.add_argument("--wal", default=None, help="WAL path (durability)")
    parser.add_argument(
        "--checkpoint-bytes", type=int, default=None,
        help="auto-checkpoint once the WAL passes this many bytes "
        "(bounds restart time; docs/durability.md)",
    )
    parser.add_argument(
        "--recovery", choices=("tolerant", "strict"), default=None,
        help="WAL corruption handling at startup: 'strict' refuses to "
        "serve over a damaged log, 'tolerant' discards-and-counts "
        "(default)",
    )
    parser.add_argument(
        "--encoding", default=None,
        help="column encoding mode (e.g. 'auto')",
    )
    parser.add_argument(
        "--timeout-ms", type=float, default=None,
        help="default per-statement timeout for every tenant",
    )
    parser.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="default per-statement memory budget for every tenant",
    )
    parser.add_argument(
        "--tenant", action="append", default=[], metavar="NAME:MS:MB",
        help="tenant budget, e.g. 'analytics:5000:256' "
        "(blank field = unlimited); repeatable",
    )
    return parser


def parse_tenant(spec: str) -> TenantBudget:
    parts = spec.split(":")
    name = parts[0]
    if not name:
        raise SystemExit(f"--tenant {spec!r}: empty tenant name")

    def _num(i: int) -> float | None:
        if len(parts) <= i or not parts[i]:
            return None
        return float(parts[i])

    return TenantBudget(name, timeout_ms=_num(1), memory_budget_mb=_num(2))


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    tenants = {}
    if args.timeout_ms is not None or args.memory_budget_mb is not None:
        tenants["default"] = TenantBudget(
            "default",
            timeout_ms=args.timeout_ms,
            memory_budget_mb=args.memory_budget_mb,
        )
    for spec in args.tenant:
        budget = parse_tenant(spec)
        tenants[budget.name] = budget
    db = Database(
        wal_path=args.wal,
        workers=args.workers,
        encoding=args.encoding,
        checkpoint_bytes=args.checkpoint_bytes,
        recovery=args.recovery,
    )
    if db.last_recovery is not None:
        rec = db.last_recovery
        print(
            f"recovered from {rec['wal_path']}: "
            f"{rec['transactions_replayed']} txn(s) / "
            f"{rec['operations_replayed']} op(s) replayed"
            + (
                f" on snapshot seq {rec['snapshot_seq']}"
                if rec["snapshot_used"]
                else ""
            )
            + (
                f", {rec['records_discarded']} record(s) discarded"
                if rec["records_discarded"]
                else ""
            )
            + f" in {rec['duration_seconds'] * 1000:.1f}ms",
            flush=True,
        )
    server = Server(
        db,
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        queue_depth=args.queue_depth,
        executors=args.executors,
        tenants=tenants,
    )
    server.start()
    host, port = server.address
    print(f"repro server listening on {host}:{port}", flush=True)
    print(f"metrics: http://{host}:{port}/metrics", flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.stop()
        db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
