"""The threaded multi-session database server (docs/server.md).

One :class:`Server` wraps one shared
:class:`~repro.api.database.Database` — catalog, worker pool, caches,
governor, history, flight recorder and all — and multiplexes many
client sessions over it:

* **connections**: one reader thread per accepted socket speaking the
  length-prefixed JSON protocol (:mod:`repro.server.protocol`); the
  same port also answers a plain HTTP ``GET /metrics`` with the
  Prometheus exposition, so a scraper needs no second endpoint;
* **sessions**: each connection owns a :class:`~.session.Session` with
  its own transaction slot (snapshot isolation across sessions comes
  straight from the engine's transaction manager) and per-tenant
  governor budgets; a dropped connection rolls its transaction back;
* **admission control**: statements do not run on connection threads —
  they pass through a *bounded* queue into a fixed executor pool.
  A full queue rejects immediately with a typed ``ADMISSION_REJECTED``
  frame (backpressure, never unbounded buffering), and every admitted
  statement's queue wait lands in the query history's phase timings
  next to parse/bind/optimize/plan/execute;
* **metrics**: ``server_sessions_active``,
  ``server_admission_queued_total``, ``server_admission_rejected_total``,
  ``server_requests_total{status=...}`` and a
  ``server_queue_wait_seconds`` histogram, all on the shared session
  registry the Prometheus exporter already renders.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..api.database import Database
from ..errors import AdmissionRejected, ProtocolError, TransactionError
from ..obs.export import to_prometheus
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    error_payload,
    read_frame,
    result_payload,
)
from .session import Session, TenantBudget

#: The tenant sessions get when ``connect`` names none.
DEFAULT_TENANT = "default"


@dataclass
class ServerConfig:
    """Tunable serving knobs (engine knobs live on the Database)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read it back from ``Server.port``.
    port: int = 0
    #: Concurrent sessions accepted before ``SESSION_LIMIT`` errors.
    max_sessions: int = 64
    #: Statements queued (beyond the ones executing) before
    #: ``ADMISSION_REJECTED`` backpressure kicks in.
    queue_depth: int = 32
    #: Executor threads actually running statements.
    executors: int = 4
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Tenant name -> :class:`TenantBudget`; unknown tenants fall back
    #: to a budget-less default (engine session defaults still apply).
    tenants: dict = field(default_factory=dict)


class _Work:
    """One admitted statement: runs on an executor, the connection
    thread waits on ``done``."""

    __slots__ = ("fn", "done", "payload", "enqueued_s")

    def __init__(self, fn):
        self.fn = fn
        self.done = threading.Event()
        self.payload: Optional[dict] = None
        self.enqueued_s = time.perf_counter()


_STOP = object()


class AdmissionController:
    """A bounded statement queue feeding a fixed executor pool.

    ``submit`` never blocks: a full queue raises
    :class:`~repro.errors.AdmissionRejected` immediately so clients get
    typed backpressure instead of unbounded latency. The queue bound
    counts *waiting* statements; ``executors`` more may be running.
    """

    def __init__(self, executors: int, queue_depth: int, metrics):
        self.executors = max(int(executors), 1)
        self.queue_depth = max(int(queue_depth), 0)
        self.metrics = metrics
        # Capacity covers running + waiting work; enforcing it with an
        # explicit counter (not queue maxsize) keeps the waiting bound
        # exact even while every executor is busy, and allows depth 0.
        self._capacity = self.executors + self.queue_depth
        self._inflight = 0
        self._queue: queue.Queue = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._lock = threading.Lock()
        self._queued = metrics.counter("server_admission_queued_total")
        self._rejected = metrics.counter(
            "server_admission_rejected_total"
        )
        self._wait_hist = metrics.histogram("server_queue_wait_seconds")

    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            for i in range(self.executors):
                thread = threading.Thread(
                    target=self._run,
                    name=f"repro-server-exec-{i}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def submit(self, work: _Work) -> _Work:
        with self._lock:
            if self._inflight >= self._capacity:
                self._rejected.inc()
                raise AdmissionRejected(
                    f"admission queue full ({self.queue_depth} waiting "
                    f"statement(s) over {self.executors} busy "
                    f"executor(s)); back off and retry"
                )
            self._inflight += 1
        self._queue.put(work)
        self._queued.inc()
        return work

    def _run(self) -> None:
        while True:
            work = self._queue.get()
            if work is _STOP:
                return
            wait_s = time.perf_counter() - work.enqueued_s
            self._wait_hist.observe(wait_s)
            try:
                work.payload = work.fn(wait_s)
            except BaseException as exc:  # noqa: BLE001 — typed frame
                work.payload = error_payload(exc)
            finally:
                with self._lock:
                    self._inflight -= 1
                work.done.set()

    def stop(self) -> None:
        with self._lock:
            if not self._started:
                return
            self._started = False
        # Fail anything still waiting, then stop the executors.
        drained: list[_Work] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                drained.append(item)
        for work in drained:
            work.payload = error_payload(
                code="ADMISSION_REJECTED",
                message="server shutting down",
            )
            with self._lock:
                self._inflight -= 1
            work.done.set()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()


class Server:
    """A multi-session socket server over one shared Database.

    ``db`` defaults to a fresh engine; pass one to serve existing data
    or a tuned configuration (workers, encoding, chaos, budgets). The
    server owns the database it *created* and closes it on
    :meth:`stop`; a caller-provided database stays the caller's.
    """

    def __init__(self, db: Optional[Database] = None, **config):
        tenants = config.pop("tenants", None)
        self.config = ServerConfig(**config)
        if tenants:
            self.config.tenants = {
                name: (
                    budget
                    if isinstance(budget, TenantBudget)
                    else TenantBudget(name, **budget)
                )
                for name, budget in tenants.items()
            }
        self._owns_db = db is None
        self.db = db if db is not None else Database()
        self.metrics = self.db.metrics
        self.admission = AdmissionController(
            self.config.executors, self.config.queue_depth, self.metrics
        )
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._sessions: dict[str, Session] = {}
        self._conns: set[socket.socket] = set()
        self._next_session = 0
        self.running = False
        self._sessions_gauge = self.metrics.gauge(
            "server_sessions_active"
        )
        self._requests = self.metrics.counter  # labelled per status
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Server":
        """Bind, listen, and start accepting (returns immediately)."""
        if self.running:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self.running = True
        self.admission.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name="repro-server-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, fail queued work, roll back every session's
        open transaction, and join the executors. Idempotent."""
        if not self.running:
            return
        self.running = False
        listener, self._listener = self._listener, None
        if listener is not None:
            # shutdown() wakes a thread blocked in accept(); close()
            # alone leaves it sleeping until the join timeout.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
        # Unblock connection reader threads.
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.release()
        self._sessions_gauge.set(0)
        self.admission.stop()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._owns_db:
            self.db.close()

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return (self.config.host, self.port or self.config.port)

    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- accept / connection loop -----------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while self.running and listener is not None:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed by stop()
            with self._lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-server-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        session: Optional[Session] = None
        try:
            try:
                head = conn.recv(4, socket.MSG_PEEK)
            except OSError:
                return
            if head[:4] == b"GET " or head[:4] == b"HEAD":
                self._serve_http(conn)
                return
            fh = conn.makefile("rwb")
            try:
                session = self._frame_loop(fh)
            finally:
                try:
                    fh.close()
                except (OSError, ValueError):
                    pass
        finally:
            if session is not None:
                self._close_session(session)
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _frame_loop(self, fh) -> Optional[Session]:
        """Serve one protocol connection; returns its session (if a
        ``connect`` succeeded) for cleanup."""
        session: Optional[Session] = None
        while self.running:
            try:
                request = read_frame(fh, self.config.max_frame_bytes)
            except ProtocolError as exc:
                code = (
                    "FRAME_TOO_LARGE"
                    if "exceeds" in str(exc)
                    else "MALFORMED_FRAME"
                )
                self._send(fh, error_payload(exc, code=code))
                self._count(code)
                return session  # framing is lost; drop the connection
            if request is None:
                return session  # clean EOF
            response, keep_open = self._dispatch(session, request)
            if session is None and response.get("ok") and (
                request.get("op") == "connect"
            ):
                session = self._session_of(response["session"])
            if not self._send(fh, response):
                return session
            if not keep_open:
                return session

    def _send(self, fh, payload: dict) -> bool:
        try:
            fh.write(encode_frame(payload))
            fh.flush()
            return True
        except (OSError, ValueError):
            return False

    def _count(self, status: str) -> None:
        self._requests("server_requests_total", status=status).inc()

    def _session_of(self, session_id: str) -> Optional[Session]:
        with self._lock:
            return self._sessions.get(session_id)

    # -- request dispatch --------------------------------------------------

    def _dispatch(
        self, session: Optional[Session], request: dict
    ) -> tuple[dict, bool]:
        """(response payload, keep-connection-open)."""
        op = request.get("op")
        if op == "connect":
            return self._op_connect(session, request)
        if op == "ping":
            self._count("ok")
            return {"ok": True, "pong": True}, True
        if op == "metrics":
            self._count("ok")
            return {
                "metrics": to_prometheus(self.metrics),
                "ok": True,
            }, True
        if op == "cancel":
            return self._op_cancel(session, request), True
        if session is None:
            self._count("PROTOCOL_ERROR")
            return (
                error_payload(
                    code="PROTOCOL_ERROR",
                    message=f"first message must be 'connect', "
                    f"got {op!r}",
                ),
                True,
            )
        if op == "query":
            return self._op_query(session, request), True
        if op == "close":
            self._count("ok")
            # Release before replying, so a client that saw the close
            # response observes the session gone (no teardown race).
            self._close_session(session)
            return {"closed": True, "ok": True, "session": session.id}, False
        self._count("PROTOCOL_ERROR")
        return (
            error_payload(
                code="PROTOCOL_ERROR", message=f"unknown op {op!r}"
            ),
            True,
        )

    def _op_connect(
        self, session: Optional[Session], request: dict
    ) -> tuple[dict, bool]:
        if session is not None:
            self._count("PROTOCOL_ERROR")
            return (
                error_payload(
                    code="PROTOCOL_ERROR",
                    message="connection already has a session",
                ),
                True,
            )
        tenant_name = str(request.get("tenant") or DEFAULT_TENANT)
        tenant = self.config.tenants.get(tenant_name) or TenantBudget(
            tenant_name
        )
        with self._lock:
            if len(self._sessions) >= self.config.max_sessions:
                rejected = True
            else:
                rejected = False
                self._next_session += 1
                session_id = f"s-{self._next_session}"
                new_session = Session(self.db, session_id, tenant)
                self._sessions[session_id] = new_session
                active = len(self._sessions)
        if rejected:
            self._count("SESSION_LIMIT")
            return (
                error_payload(
                    code="SESSION_LIMIT",
                    message=f"session limit of "
                    f"{self.config.max_sessions} reached",
                ),
                True,
            )
        self._sessions_gauge.set(active)
        self.metrics.counter("server_sessions_total").inc()
        self._count("ok")
        return (
            {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "session": session_id,
                "tenant": tenant_name,
            },
            True,
        )

    def _op_cancel(
        self, session: Optional[Session], request: dict
    ) -> dict:
        target_id = request.get("session") or (
            session.id if session is not None else None
        )
        target = self._session_of(target_id) if target_id else None
        if target is None:
            self._count("PROTOCOL_ERROR")
            return error_payload(
                code="PROTOCOL_ERROR",
                message=f"no such session {target_id!r}",
            )
        cancelled = target.cancel()
        self._count("ok")
        return {
            "cancelled": bool(cancelled),
            "ok": True,
            "session": target_id,
        }

    def _op_query(self, session: Session, request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self._count("PROTOCOL_ERROR")
            return error_payload(
                code="PROTOCOL_ERROR",
                message="query op requires a non-empty 'sql' string",
            )
        params = request.get("params")
        if params is not None and not isinstance(params, list):
            self._count("PROTOCOL_ERROR")
            return error_payload(
                code="PROTOCOL_ERROR",
                message="'params' must be an array",
            )
        timeout_ms, budget_mb = session.effective_budgets(
            request.get("timeout_ms"), request.get("memory_budget_mb")
        )
        # Only forward budgets actually set: an explicit None would
        # override the engine's own session defaults with "unlimited".
        budgets: dict = {}
        if timeout_ms is not None:
            budgets["timeout_ms"] = timeout_ms
        if budget_mb is not None:
            budgets["memory_budget_mb"] = budget_mb
        token = session.new_cancel_token()

        def run(wait_s: float) -> dict:
            db = self.db
            if session.closed:
                raise TransactionError(
                    f"session {session.id} is closed"
                )
            with db.txn_scope(session):
                db.stage_statement_phase("queue", wait_s)
                result = db.execute(
                    sql,
                    params,
                    cancel_token=token,
                    **budgets,
                )
            payload = result_payload(result)
            payload["in_txn"] = session.txn is not None
            payload["session"] = session.id
            return payload

        try:
            work = self.admission.submit(_Work(run))
        except AdmissionRejected as exc:
            self._count("ADMISSION_REJECTED")
            return error_payload(exc)
        work.done.wait()
        session.clear_cancel_token()
        session.statements += 1
        payload = work.payload or error_payload(
            code="INTERNAL_ERROR", message="statement produced no result"
        )
        status = (
            "ok"
            if payload.get("ok")
            else payload.get("error", {}).get("code", "INTERNAL_ERROR")
        )
        self._count(status)
        return payload

    def _close_session(self, session: Session) -> None:
        with self._lock:
            self._sessions.pop(session.id, None)
            active = len(self._sessions)
        session.release()
        self._sessions_gauge.set(active)

    # -- HTTP /metrics -----------------------------------------------------

    def _serve_http(self, conn: socket.socket) -> None:
        """Answer one plain HTTP request on the protocol port — the
        Prometheus scrape path (``GET /metrics``)."""
        try:
            conn.settimeout(5.0)
            data = b""
            while b"\r\n\r\n" not in data and len(data) < 65536:
                chunk = conn.recv(4096)
                if not chunk:
                    break
                data += chunk
            request_line = data.split(b"\r\n", 1)[0].decode(
                "latin-1", "replace"
            )
            parts = request_line.split()
            path = parts[1] if len(parts) > 1 else "/"
            if path.split("?", 1)[0] == "/metrics":
                body = to_prometheus(self.metrics).encode("utf-8")
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = b"repro server: scrape /metrics\n"
                status = "404 Not Found"
                ctype = "text/plain; charset=utf-8"
            head = (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            conn.sendall(head + body)
        except OSError:
            pass
