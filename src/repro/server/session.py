"""Per-session state over the shared engine.

A :class:`Session` is what one connected client owns: its own
transaction slot (routed through
:meth:`repro.api.database.Database.txn_scope`, so concurrent sessions'
``BEGIN``/``COMMIT``/``ROLLBACK`` never collide on the embedded
single-session slot), the tenant it authenticated as, and the cancel
token of its in-flight statement.

Tenant budgets compose with per-request overrides by *clamping*: a
request may only tighten the tenant's ``timeout_ms`` /
``memory_budget_mb`` caps, never widen them — multi-tenant fairness
must not be client-opt-in (docs/server.md).
"""

from __future__ import annotations

import threading
from typing import Optional

from ..governor import CancelToken


def clamp_budget(
    requested: Optional[float], cap: Optional[float]
) -> Optional[float]:
    """The effective per-statement budget: the tenant cap bounds any
    per-request override (None = unlimited on that side)."""
    if cap is None or cap <= 0:
        return requested
    if requested is None or requested <= 0:
        return cap
    return min(float(requested), float(cap))


class TenantBudget:
    """Per-tenant governor defaults, applied to every statement the
    tenant's sessions run (per-request overrides clamp against them)."""

    __slots__ = ("name", "timeout_ms", "memory_budget_mb")

    def __init__(
        self,
        name: str,
        timeout_ms: Optional[float] = None,
        memory_budget_mb: Optional[float] = None,
    ):
        self.name = name
        self.timeout_ms = timeout_ms
        self.memory_budget_mb = memory_budget_mb

    def __repr__(self) -> str:
        return (
            f"TenantBudget({self.name!r}, timeout_ms={self.timeout_ms}, "
            f"memory_budget_mb={self.memory_budget_mb})"
        )


class Session:
    """One client session multiplexed over the shared Database.

    Satisfies the ``txn_scope`` contract (a mutable ``txn`` attribute);
    the server's executor wraps every statement of this session in
    ``with db.txn_scope(session):`` so the engine's transaction plumbing
    reads and writes *this* session's slot.
    """

    def __init__(self, db, session_id: str, tenant: TenantBudget):
        self.db = db
        self.id = session_id
        self.tenant = tenant
        #: This session's open transaction (the txn_scope slot).
        self.txn = None
        self.closed = False
        self._lock = threading.Lock()
        self._active_token: Optional[CancelToken] = None
        #: Statements this session has run (connect response echoes 0).
        self.statements = 0

    # -- cancellation ------------------------------------------------------

    def new_cancel_token(self) -> CancelToken:
        """A fresh token for the next statement; installed as the
        session's active token so :meth:`cancel` reaches exactly this
        session's in-flight work."""
        token = CancelToken()
        with self._lock:
            self._active_token = token
        return token

    def clear_cancel_token(self) -> None:
        with self._lock:
            self._active_token = None

    def cancel(self) -> bool:
        """Cancel this session's in-flight (or about-to-run) statement;
        True when a token was signalled. Safe from any thread — this is
        what the out-of-band ``cancel`` op calls."""
        with self._lock:
            token = self._active_token
        if token is None:
            return False
        token.cancel()
        return True

    # -- budgets -----------------------------------------------------------

    def effective_budgets(
        self,
        timeout_ms: Optional[float],
        memory_budget_mb: Optional[float],
    ) -> tuple[Optional[float], Optional[float]]:
        """Per-request overrides clamped to the tenant caps."""
        return (
            clamp_budget(timeout_ms, self.tenant.timeout_ms),
            clamp_budget(memory_budget_mb, self.tenant.memory_budget_mb),
        )

    # -- lifecycle ---------------------------------------------------------

    def release(self) -> None:
        """End the session: cancel any in-flight statement and roll
        back an open transaction (per-session rollback on disconnect —
        a dropped connection must never leak uncommitted writes or pin
        the vacuum horizon). Idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            token = self._active_token
        if token is not None:
            token.cancel()
        txn = self.txn
        self.txn = None
        if txn is not None and txn.status == "active":
            txn.rollback()

    def __repr__(self) -> str:
        state = "closed" if self.closed else (
            "in-txn" if self.txn is not None else "idle"
        )
        return (
            f"Session({self.id!r}, tenant={self.tenant.name!r}, "
            f"{state})"
        )
