"""Materialised query results."""

from __future__ import annotations

from typing import Iterator, Optional

from ..plan.logical import PlanColumn
from ..storage.column import Column, ColumnBatch
from ..types import SQLType


class QueryResult:
    """The materialised outcome of one statement.

    Row-oriented access (``rows``, ``fetchone``, iteration) for
    convenience; column-oriented access (:meth:`column`) without leaving
    numpy for analytics pipelines.
    """

    def __init__(
        self,
        columns: list[str],
        types: list[SQLType],
        batch: Optional[ColumnBatch] = None,
        slots: Optional[list[str]] = None,
        rowcount: int = -1,
    ):
        self.columns = columns
        self.types = types
        self._batch = batch
        self._slots = slots or []
        #: For DML statements: number of affected rows; -1 for queries.
        self.rowcount = rowcount
        self._rows: Optional[list[tuple]] = None

    @classmethod
    def from_batch(
        cls, batch: ColumnBatch, output: list[PlanColumn]
    ) -> "QueryResult":
        return cls(
            columns=[c.name for c in output],
            types=[c.sql_type for c in output],
            batch=batch,
            slots=[c.slot for c in output],
        )

    @classmethod
    def statement(cls, rowcount: int) -> "QueryResult":
        """A result for a statement that returns no rows."""
        return cls(columns=[], types=[], rowcount=rowcount)

    # -- row access ----------------------------------------------------------

    @property
    def rows(self) -> list[tuple]:
        if self._rows is None:
            if self._batch is None:
                self._rows = []
            else:
                ordered = self._batch.project(self._slots)
                self._rows = list(ordered.rows())
        return self._rows

    def fetchall(self) -> list[tuple]:
        return list(self.rows)

    def fetchone(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> object:
        """The single value of a one-row, one-column result."""
        row = self.fetchone()
        if row is None or len(row) != 1 or len(self.rows) != 1:
            raise ValueError(
                "scalar() requires exactly one row and one column, got "
                f"{len(self.rows)} row(s) x {len(self.columns)} column(s)"
            )
        return row[0]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        if self._batch is not None:
            return len(self._batch)
        return max(self.rowcount, 0)

    def __repr__(self) -> str:
        return (
            f"QueryResult({len(self)} rows, columns={self.columns})"
        )

    # -- column access ---------------------------------------------------------

    def column(self, name: str) -> Column:
        """A result column by name (numpy-backed)."""
        if self._batch is None:
            raise KeyError(name)
        lowered = name.lower()
        for col_name, slot in zip(self.columns, self._slots):
            if col_name.lower() == lowered:
                return self._batch[slot]
        raise KeyError(name)

    def to_csv(self, path_or_buffer, delimiter: str = ",") -> int:
        """Write the result as CSV; returns the data-row count."""
        from .csv_io import result_to_csv

        return result_to_csv(self, path_or_buffer, delimiter)

    def to_dict(self) -> dict[str, list[object]]:
        """Column-name -> list-of-values (duplicate names keep the
        first occurrence)."""
        out: dict[str, list[object]] = {}
        for col_name, slot in zip(self.columns, self._slots):
            if col_name not in out and self._batch is not None:
                out[col_name] = self._batch[slot].to_pylist()
        return out
