"""Materialised query results."""

from __future__ import annotations

from typing import Iterator, Optional

from ..exec.physical import OperatorStats
from ..plan.logical import PlanColumn
from ..storage.column import Column, ColumnBatch
from ..types import SQLType


class QueryResult:
    """The materialised outcome of one statement.

    Row-oriented access (``rows``, ``fetchone``, iteration) for
    convenience; column-oriented access (:meth:`column`) without leaving
    numpy for analytics pipelines.
    """

    def __init__(
        self,
        columns: list[str],
        types: list[SQLType],
        batch: Optional[ColumnBatch] = None,
        slots: Optional[list[str]] = None,
        rowcount: int = -1,
    ):
        self.columns = columns
        self.types = types
        self._batch = batch
        self._slots = slots or []
        #: For DML statements: number of affected rows; -1 for queries.
        self.rowcount = rowcount
        #: Operator-reported convergence telemetry, keyed by operator
        #: name (``kmeans``: per-iteration inertia and center shift,
        #: ``pagerank``: per-iteration L1 residual, ``naive_bayes``:
        #: per-class counts and priors). Empty for statements that ran
        #: no analytics operator.
        self.telemetry: dict[str, object] = {}
        self._rows: Optional[list[tuple]] = None

    @classmethod
    def from_batch(
        cls, batch: ColumnBatch, output: list[PlanColumn]
    ) -> "QueryResult":
        return cls(
            columns=[c.name for c in output],
            types=[c.sql_type for c in output],
            batch=batch,
            slots=[c.slot for c in output],
        )

    @classmethod
    def statement(cls, rowcount: int) -> "QueryResult":
        """A result for a statement that returns no rows."""
        return cls(columns=[], types=[], rowcount=rowcount)

    # -- row access ----------------------------------------------------------

    @property
    def rows(self) -> list[tuple]:
        if self._rows is None:
            if self._batch is None:
                self._rows = []
            else:
                ordered = self._batch.project(self._slots)
                self._rows = list(ordered.rows())
        return self._rows

    def fetchall(self) -> list[tuple]:
        return list(self.rows)

    def fetchone(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> object:
        """The single value of a one-row, one-column result."""
        row = self.fetchone()
        if row is None or len(row) != 1 or len(self.rows) != 1:
            raise ValueError(
                "scalar() requires exactly one row and one column, got "
                f"{len(self.rows)} row(s) x {len(self.columns)} column(s)"
            )
        return row[0]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        if self._batch is not None:
            return len(self._batch)
        return max(self.rowcount, 0)

    def __repr__(self) -> str:
        return (
            f"QueryResult({len(self)} rows, columns={self.columns})"
        )

    # -- column access ---------------------------------------------------------

    def column(self, name: str) -> Column:
        """A result column by name (numpy-backed)."""
        if self._batch is None:
            raise KeyError(name)
        lowered = name.lower()
        for col_name, slot in zip(self.columns, self._slots):
            if col_name.lower() == lowered:
                return self._batch[slot]
        raise KeyError(name)

    def to_csv(self, path_or_buffer, delimiter: str = ",") -> int:
        """Write the result as CSV; returns the data-row count."""
        from .csv_io import result_to_csv

        return result_to_csv(self, path_or_buffer, delimiter)

    def to_dict(self) -> dict[str, list[object]]:
        """Column-name -> list-of-values (duplicate names keep the
        first occurrence)."""
        out: dict[str, list[object]] = {}
        for col_name, slot in zip(self.columns, self._slots):
            if col_name not in out and self._batch is not None:
                out[col_name] = self._batch[slot].to_pylist()
        return out


class AnalyzedQuery:
    """What :meth:`Database.explain_analyze` returns: the query's
    result plus the profiled physical-operator tree.

    ``root`` is the main plan's :class:`OperatorStats`; ``subplans``
    holds the stats trees of subquery plans built lazily during
    execution (scalar/IN/EXISTS subqueries), in build order.
    ``counters`` is this statement's delta of the hot-path cache
    counters — plan cache, expression-kernel cache, zone-map pruning,
    CSR cache — empty when none moved (docs/performance.md).
    ``governor`` is the statement's final resource-governor report:
    verdict, checkpoints passed, elapsed time, peak accounted operator
    bytes, and the limits in force (docs/robustness.md).
    """

    def __init__(
        self,
        result: QueryResult,
        root: OperatorStats,
        subplans: list[OperatorStats],
        total_s: float,
        counters: Optional[dict] = None,
        governor: Optional[dict] = None,
    ):
        self.result = result
        self.root = root
        self.subplans = subplans
        self.total_s = total_s
        self.counters: dict = counters or {}
        self.governor: dict = governor or {}

    def operators(self) -> Iterator[OperatorStats]:
        """Every stats node of the main plan and all subplans."""
        yield from self.root.walk()
        for sub in self.subplans:
            yield from sub.walk()

    def find(self, prefix: str) -> Optional[OperatorStats]:
        """First operator (pre-order, main plan then subplans) whose
        label starts with ``prefix``."""
        for node in self.operators():
            if node.label.startswith(prefix):
                return node
        return None

    def top(self, n: int = 5) -> list[OperatorStats]:
        """The ``n`` most expensive operators (main plan and subplans)
        by exclusive time ``self_s``, most expensive first."""
        return sorted(
            self.operators(), key=lambda node: node.self_s,
            reverse=True,
        )[: max(n, 0)]

    def format(self) -> str:
        parts = [
            f"total time: {self.total_s * 1e3:.3f}ms, "
            f"{len(self.result)} row(s)",
            self.root.format(),
        ]
        for i, sub in enumerate(self.subplans):
            parts.append(f"subplan {i}:")
            parts.append(sub.format(indent=1))
        if self.counters:
            rendered = ", ".join(
                f"{name}={value:g}"
                for name, value in sorted(self.counters.items())
            )
            parts.append(f"hot path: {rendered}")
        if self.governor:
            gov = self.governor
            limits = []
            if gov.get("timeout_ms"):
                limits.append(f"timeout_ms={gov['timeout_ms']:g}")
            if gov.get("memory_budget_bytes"):
                limits.append(
                    f"budget_bytes={gov['memory_budget_bytes']}"
                )
            trailer = f", {', '.join(limits)}" if limits else ""
            parts.append(
                f"governor: verdict={gov.get('verdict', 'ok')}, "
                f"checkpoints={gov.get('checkpoints', 0)}, "
                f"peak_bytes={gov.get('peak_bytes', 0)}{trailer}"
            )
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.format()

    def __repr__(self) -> str:
        n_ops = sum(1 for _ in self.operators())
        return (
            f"AnalyzedQuery({len(self.result)} rows, {n_ops} operators, "
            f"{self.total_s * 1e3:.3f}ms)"
        )
