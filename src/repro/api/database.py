"""The :class:`Database` session — the engine's public entry point.

One object composes the whole stack: catalog + transaction manager
(snapshot isolation, optional WAL), SQL front end, optimizer, vectorised
executor, the analytics operator registry, and the UDF registry.

Statements run in the session's explicit transaction when one is open
(``BEGIN``/``COMMIT``/``ROLLBACK`` or :meth:`Database.transaction`);
otherwise each statement autocommits.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..analytics.registry import OperatorRegistry, default_registry
from ..errors import (
    BindError,
    CatalogError,
    InjectedFault,
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResourceGovernorError,
    TransactionError,
)
from ..exec.parallel import WorkerPool, resolve_workers
from ..exec.physical import (
    DEFAULT_PARALLEL_THRESHOLD,
    ExecutionContext,
    ExecutionStats,
    materialize,
)
from ..exec.planner import build_physical
from ..expr.compiler import truth_mask
from ..governor import QueryContext
from ..obs.flight import FlightRecorder
from ..obs.history import (
    QueryHistory,
    operator_observations,
    record_from_span,
    resolve_history_path,
    resolve_slow_ms,
)
from ..obs.metrics import MetricsRegistry, global_registry
from ..obs.trace import QueryLogEntry, Span, Tracer
from ..exec.sort import resolve_topn
from ..plan.cardinality import CardinalityEstimator
from ..plan.feedback import CardinalityFeedback, resolve_feedback
from ..plan.stats import TableStatistics
from ..plan.cache import (
    CachedPlan,
    NegativePlan,
    PlanCache,
    cache_enabled,
    sql_fingerprint,
)
from ..plan.logical import PlanColumn
from ..plan.optimizer import Optimizer, explain_with_estimates
from ..sql import ast
from ..sql.binder import Binder
from ..sql.parser import parse_sql
from ..storage.catalog import Catalog
from ..storage.column import Column, ColumnBatch
from ..storage.encoding import (
    column_encoding_of,
    column_raw_nbytes,
    resolve_encoding,
)
from ..storage.schema import ColumnSchema, TableSchema
from ..storage.table import TableData
from ..txn.checkpoint import (
    capture_catalog,
    load_snapshot,
    restore_into,
    snapshot_path,
    write_snapshot,
)
from ..txn.manager import Transaction, TransactionManager
from ..txn.wal import (
    WriteAheadLog,
    resolve_checkpoint_bytes,
    resolve_recovery,
)
from ..types import (
    SQLType,
    coerce_scalar,
    infer_literal_type,
    type_from_name,
)
from ..udf.registry import TableUDFDescriptor, UDFRegistry
from .result import AnalyzedQuery, QueryResult


#: Sentinel distinguishing "not passed" from an explicit ``None``
#: (which disables the session default for that call).
_UNSET = object()

#: Governor error type -> the session counter it bumps.
_GOVERNOR_COUNTERS = (
    (QueryCancelled, "engine_queries_cancelled_total"),
    (QueryTimeout, "engine_queries_timed_out_total"),
    (MemoryBudgetExceeded, "engine_queries_oom_aborted_total"),
)


class _TxnCatalogView:
    """The binder's read-only window onto a transaction's snapshot."""

    def __init__(self, txn: Transaction):
        self._txn = txn

    def table_exists(self, name: str) -> bool:
        return self._txn.table_exists(name)

    def schema_of(self, name: str) -> TableSchema:
        return self._txn.schema_of(name)


class Database:
    """A main-memory relational database with in-core analytics.

    Args:
        wal_path: file path for the write-ahead log; None disables
            durability (pure main-memory session). Passing a path that
            already holds a log **recovers** from it.
        optimize: disable to run binder plans verbatim (ablations).
        profile_operators: keep per-operator self-time histograms for
            every statement (``operator_self_seconds{op=...}``); disable
            to shave the wrapper overhead in micro-benchmarks.
        query_log_size: how many statements the query-log ring buffer
            retains (see :meth:`query_log`).
        workers: worker-thread count for morsel-driven parallel
            execution. ``None`` reads ``REPRO_WORKERS`` (default 1 —
            fully serial). Results are bit-identical for every worker
            count (see ``docs/parallelism.md``).
        parallel_threshold: minimum base-table cardinality before the
            planner chooses a parallel pipeline over the serial
            operators (0 parallelises everything — test battery use).
        plan_cache: enable the statement/plan cache (and with it the
            whole hot-path stack: expression-kernel cache, zone-map
            pruning, CSR cache). ``None`` reads ``REPRO_PLAN_CACHE``
            (default on); see ``docs/performance.md``.
        timeout_ms: default per-statement deadline; a statement past it
            aborts with :class:`~repro.errors.QueryTimeout` at its next
            checkpoint. ``None``/``<= 0`` disables. Per-call overrides
            on :meth:`execute` et al. win (docs/robustness.md).
        memory_budget_mb: default per-statement budget over accounted
            operator memory (materialised numpy state); exceeding it
            aborts with :class:`~repro.errors.MemoryBudgetExceeded`.
            ``None``/``<= 0`` disables.
        chaos: a :class:`repro.testing.chaos.ChaosInjector` for
            deterministic fault injection; ``None`` reads
            ``REPRO_CHAOS`` (default off).
        encoding: column-encoding policy for committed table versions —
            ``auto`` (per-column selection: dictionary for strings,
            RLE/frame-of-reference for integers), ``dict``/``for``/
            ``rle`` (force one family), or ``raw``. ``None`` reads
            ``REPRO_ENCODING`` (default ``auto``); see
            ``docs/storage.md``.
        history: JSONL spill path for the query history store; every
            finished statement appends one JSON document. ``None``
            reads ``REPRO_HISTORY`` (default: memory-only — the
            in-memory store is always on regardless). See
            :attr:`history` and ``docs/observability.md``.
        slow_ms: slow-query threshold in milliseconds — statements at
            or past it are flagged and land in ``db.history.slow()``.
            ``None`` reads ``REPRO_SLOW_MS`` (default off).
        flight_dir: directory for flight-recorder diagnostic bundles
            (dumped when a statement dies on a governor abort, an
            injected fault, or a survived worker crash). ``None`` reads
            ``REPRO_FLIGHTREC`` (default ``results/flightrec``).
    """

    def __init__(
        self,
        wal_path: Optional[str] = None,
        optimize: bool = True,
        morsel_rows: int = 65_536,
        max_iterations: int = 10_000,
        profile_operators: bool = True,
        query_log_size: int = 256,
        workers: Optional[int] = None,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        plan_cache: Optional[bool] = None,
        timeout_ms: Optional[float] = None,
        memory_budget_mb: Optional[float] = None,
        chaos=None,
        encoding: Optional[str] = None,
        history: Optional[str] = None,
        slow_ms: Optional[float] = None,
        flight_dir: Optional[str] = None,
        topn: Optional[bool] = None,
        feedback: Optional[bool] = None,
        checkpoint_bytes: Optional[int] = None,
        recovery: Optional[str] = None,
    ):
        self.catalog = Catalog()
        #: Session metrics registry; mirrored into
        #: :func:`repro.obs.metrics.global_registry` so tools that open
        #: many sessions (bench sweeps, the fuzzer) see aggregates.
        self.metrics = MetricsRegistry(parent=global_registry())
        #: Durability knobs (docs/durability.md). The WAL itself is
        #: opened *after* the flight recorder exists, so a failed
        #: recovery can dump a diagnostic bundle.
        self.wal_path = wal_path
        #: Corruption-recovery mode (argument, then REPRO_RECOVERY,
        #: then "tolerant"): strict raises WalCorruptionError on
        #: mid-log damage, tolerant discards-and-counts.
        self.recovery = resolve_recovery(recovery)
        #: Auto-checkpoint threshold in WAL bytes (argument, then
        #: REPRO_CHECKPOINT_BYTES, then off).
        self.checkpoint_bytes = resolve_checkpoint_bytes(checkpoint_bytes)
        #: Effective column-encoding policy (argument, then
        #: REPRO_ENCODING, then "auto").
        self.encoding = resolve_encoding(encoding)
        self.txns = TransactionManager(
            self.catalog, None, metrics=self.metrics,
            encoding=self.encoding,
        )
        self.udfs = UDFRegistry()
        self.analytics: OperatorRegistry = default_registry()
        self.optimize_enabled = optimize
        self.morsel_rows = morsel_rows
        self.max_iterations = max_iterations
        self.profile_operators = profile_operators
        #: Effective worker count (argument, then REPRO_WORKERS, then 1).
        self.workers = resolve_workers(workers)
        self.parallel_threshold = parallel_threshold
        #: Session-default resource budgets (per-call overrides win).
        self.timeout_ms = timeout_ms
        self.memory_budget_mb = memory_budget_mb
        if chaos is None:
            from ..testing.chaos import ChaosInjector

            chaos = ChaosInjector.from_env()
        #: Optional chaos injector, consulted by every statement's
        #: governor and by the worker pool (docs/robustness.md).
        self.chaos = chaos
        #: The governor of the statement running on each thread.
        self._stmt_local = threading.local()
        #: Governors of all in-flight statements (:meth:`cancel`).
        self._active_governors: list[QueryContext] = []
        self._governor_lock = threading.Lock()
        #: Final governor report of the most recent statement.
        self.last_governor: Optional[dict] = None
        self._tracer = Tracer(log_size=query_log_size)
        #: Shared morsel-dispatch pool; threads are created lazily, so a
        #: serial session never spawns any. The tracer rides along so
        #: worker-side morsel spans stitch under the owning statement.
        self.pool = WorkerPool(
            self.workers, metrics=self.metrics, chaos=self.chaos,
            tracer=self._tracer,
        )
        #: Backing slot of the ``_session_txn`` property for embedded
        #: (scope-less) use; server sessions carry their own slot.
        self._default_txn: Optional[Transaction] = None
        #: Statement/plan cache (docs/performance.md). ``None`` defers
        #: the on/off decision to REPRO_PLAN_CACHE at statement time.
        self._plan_cache_enabled = plan_cache
        self._plan_cache = PlanCache()
        #: Bumped by UDF/operator registration: cached plans embed the
        #: registered callables, so re-registration must invalidate.
        #: Also bumped by cardinality feedback when observed rows would
        #: flip a cached plan's join build side (docs/performance.md).
        self._cache_epoch = 0
        #: Sort+Limit -> top-N fusion switch (argument, then
        #: REPRO_TOPN, then on).
        self.topn_enabled = resolve_topn(topn)
        #: Feedback-driven re-optimization switch (argument, then
        #: REPRO_FEEDBACK, then on). Only effective while operator
        #: profiling is on — feedback is fed by profiled observations.
        self.feedback_enabled = resolve_feedback(feedback)
        #: Version-keyed table statistics shared across statements
        #: (dictionary NDV, min/max, null fractions — plan/stats.py).
        self._stats_cache: "OrderedDict" = OrderedDict()
        #: Always-on per-statement history store: recent records
        #: (``db.history(n)``), the per-fingerprint plan-feedback index
        #: (``db.history.by_fingerprint(fp)``), and the slow-query log
        #: (``db.history.slow()``). See docs/observability.md.
        self.history = QueryHistory(
            spill_path=resolve_history_path(history),
            slow_ms=resolve_slow_ms(slow_ms),
            metrics=self.metrics,
        )
        #: Per-fingerprint observed-cardinality overrides derived from
        #: the history store (plan/feedback.py).
        self._feedback = CardinalityFeedback(
            self.history, metrics=self.metrics
        )
        #: Flight recorder: a self-contained diagnostic bundle is
        #: dumped whenever a statement dies on a governor abort or an
        #: injected fault, and whenever a worker crash is survived.
        self.flight = FlightRecorder(
            tracer=self._tracer,
            history=self.history,
            metrics=self.metrics,
            config=self._session_config(),
            directory=flight_dir,
        )
        self.pool.on_worker_crash = self._on_worker_crash
        #: Stats of the most recent statement (peak live tuples, etc.).
        self.last_stats: ExecutionStats = ExecutionStats()
        #: Telemetry of the most recent durable open (``None`` for a
        #: pure in-memory session): snapshot used, records scanned /
        #: replayed / discarded, torn-tail bytes, duration.
        self.last_recovery: Optional[dict] = None
        #: Result of the most recent :meth:`checkpoint`.
        self.last_checkpoint: Optional[dict] = None
        self._checkpointing = False
        if wal_path is not None:
            try:
                self._open_durable(wal_path)
            except BaseException as exc:
                self.flight.dump(
                    "recovery_failure",
                    error=exc if isinstance(exc, Exception) else None,
                )
                raise
            self.txns.after_commit = self._maybe_checkpoint

    # ------------------------------------------------------------------
    # durability: recovery and checkpointing (docs/durability.md)
    # ------------------------------------------------------------------

    def _open_durable(self, wal_path: str) -> None:
        """Open (or create) the WAL and bring the catalog to the newest
        durable state: load the newest valid snapshot, then replay the
        WAL suffix atomically per original transaction."""
        started = time.perf_counter()
        snapshot = load_snapshot(snapshot_path(wal_path))
        wal = WriteAheadLog(
            wal_path, metrics=self.metrics, recovery=self.recovery
        )
        try:
            self.txns.wal = wal
            min_seq = 0
            tables_restored = 0
            if snapshot is not None:
                tables_restored = restore_into(self.txns, snapshot)
                min_seq = int(snapshot.get("wal_seq", 0))
                wal.ensure_seq(min_seq)
            replay = wal.replay_stats(self.txns, min_seq=min_seq)
        except BaseException:
            wal.close()
            self.txns.wal = None
            raise
        duration = time.perf_counter() - started
        scan = wal.open_scan
        discarded = scan.records_discarded if scan is not None else 0
        if discarded:
            self.metrics.counter("wal_records_discarded_total").inc(
                discarded
            )
        self.metrics.histogram("wal_recovery_seconds").observe(duration)
        self.last_recovery = {
            "wal_path": wal_path,
            "format": wal.format,
            "snapshot_used": snapshot is not None,
            "snapshot_seq": min_seq,
            "tables_restored": tables_restored,
            "records_scanned": (
                scan.records_scanned if scan is not None else 0
            ),
            "records_discarded": discarded,
            "bytes_discarded": (
                scan.bytes_discarded if scan is not None else 0
            ),
            "torn_bytes": scan.torn_bytes if scan is not None else 0,
            "operations_replayed": replay["operations"],
            "transactions_replayed": replay["transactions"],
            "incomplete_transactions": replay["incomplete_transactions"],
            "duration_seconds": duration,
        }

    def checkpoint(self) -> dict:
        """Snapshot the committed catalog beside the WAL and truncate
        the records it covers; returns what was written.

        The snapshot lands via atomic write-then-rename (fsynced file
        *and* directory), stamped with the WAL sequence number it is
        consistent with — so a crash anywhere in the protocol recovers
        cleanly: before the rename the old snapshot still rules, and
        between the rename and the truncation the stale WAL prefix is
        filtered out by sequence number instead of replayed twice."""
        wal = self.txns.wal
        if wal is None or wal.path is None:
            raise TransactionError(
                "checkpoint requires a file-backed WAL "
                "(Database(wal_path=...))"
            )
        with self.txns._lock:
            ts = self.catalog.current_ts
            seq = wal.last_seq
            tables = capture_catalog(self.catalog, ts)
            snapshot_bytes = write_snapshot(
                snapshot_path(wal.path),
                {"wal_seq": seq, "commit_ts": ts, "tables": tables},
            )
            wal.truncate_through(seq)
        self.metrics.counter("wal_checkpoints_total").inc()
        self.metrics.gauge("wal_size_bytes").set(wal.size_bytes())
        self.last_checkpoint = {
            "wal_seq": seq,
            "commit_ts": ts,
            "tables": len(tables),
            "snapshot_bytes": snapshot_bytes,
            "wal_bytes_after": wal.size_bytes(),
        }
        return self.last_checkpoint

    def _maybe_checkpoint(self) -> None:
        """Auto-checkpoint policy, invoked from the commit path (under
        the manager's re-entrant lock) after every durable commit."""
        if self._checkpointing or not self.checkpoint_bytes:
            return
        wal = self.txns.wal
        if wal is None or wal.path is None:
            return
        if wal.size_bytes() < self.checkpoint_bytes:
            return
        self._checkpointing = True
        try:
            self.checkpoint()
        finally:
            self._checkpointing = False

    # ------------------------------------------------------------------
    # session-transaction routing
    # ------------------------------------------------------------------
    #
    # Embedded use keeps one transaction slot per Database. A server
    # multiplexing many client sessions over one shared Database routes
    # the slot through a per-thread *scope* instead (``txn_scope``), so
    # each session owns its transaction and BEGIN/COMMIT/ROLLBACK from
    # concurrent sessions never collide (docs/server.md).

    @property
    def _session_txn(self) -> Optional[Transaction]:
        scope = getattr(self._stmt_local, "txn_scope", None)
        if scope is not None:
            return scope.txn
        return self._default_txn

    @_session_txn.setter
    def _session_txn(self, value: Optional[Transaction]) -> None:
        scope = getattr(self._stmt_local, "txn_scope", None)
        if scope is not None:
            scope.txn = value
        else:
            self._default_txn = value

    @contextmanager
    def txn_scope(self, scope):
        """Route this thread's session-transaction state into ``scope``
        (any object with a mutable ``txn`` attribute) for the duration.

        While active, ``begin``/``commit``/``rollback`` and statement
        execution on this thread read and write ``scope.txn`` instead of
        the Database's own slot, giving every server session its own
        transaction over one shared engine. Scopes nest (the previous
        scope is restored on exit) and are thread-local, so concurrent
        sessions never observe each other's transaction."""
        prev = getattr(self._stmt_local, "txn_scope", None)
        self._stmt_local.txn_scope = scope
        try:
            yield scope
        finally:
            self._stmt_local.txn_scope = prev

    def stage_statement_phase(self, name: str, seconds: float) -> None:
        """Attach an extra phase timing to the *next* statement record
        on this thread (merged into ``QueryRecord.phases``). The server
        uses this to surface admission-queue wait next to the engine's
        own parse/bind/optimize/plan/execute phases."""
        staged = getattr(self._stmt_local, "staged_phases", None)
        if staged is None:
            staged = self._stmt_local.staged_phases = {}
        staged[name] = staged.get(name, 0.0) + float(seconds)

    def _session_config(self) -> dict:
        """The session settings a flight-recorder bundle embeds."""
        return {
            "workers": self.workers,
            "encoding": self.encoding,
            "timeout_ms": self.timeout_ms,
            "memory_budget_mb": self.memory_budget_mb,
            "plan_cache": self.plan_cache_active(),
            "morsel_rows": self.morsel_rows,
            "parallel_threshold": self.parallel_threshold,
            "profile_operators": self.profile_operators,
            "wal_path": self.wal_path,
            "recovery": self.recovery,
            "checkpoint_bytes": self.checkpoint_bytes,
        }

    def _on_worker_crash(self, exc: Exception) -> None:
        """A worker crash was survived by serial retry: the statement
        will succeed, so this dump is the only evidence it happened."""
        governor = getattr(self._stmt_local, "governor", None)
        self.flight.dump(
            "worker_crash",
            error=exc,
            governor=governor.report() if governor is not None else None,
            trace=self._tracer.current_root(),
        )

    def close(self) -> None:
        """Release session resources (joins the worker pool). The
        session stays usable afterwards — worker threads respawn on the
        next parallel statement, and the WAL append handle reopens on
        the next durable commit. Idempotent: closing twice is a no-op."""
        self.pool.shutdown()
        if self.txns.wal is not None:
            self.txns.wal.close()

    def cancel(self) -> int:
        """Cooperatively cancel every in-flight statement.

        Safe to call from any thread. Each running statement observes
        the cancellation at its next morsel / iteration-round checkpoint
        and aborts with :class:`~repro.errors.QueryCancelled` (its
        transaction rolls back; the session stays usable). Returns the
        number of statements signalled."""
        with self._governor_lock:
            governors = list(self._active_governors)
        for governor in governors:
            governor.cancel_token.cancel()
        return len(governors)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def create_function(
        self,
        name: str,
        func: Callable,
        return_type: SQLType | str,
        arity: Optional[int] = None,
    ) -> None:
        """Register a scalar UDF callable from SQL (layer 2)."""
        if isinstance(return_type, str):
            return_type = type_from_name(return_type)
        self.udfs.register_scalar(name, func, return_type, arity)
        self._cache_epoch += 1

    def create_table_function(
        self,
        name: str,
        func: Callable,
        output_schema: Sequence[tuple[str, SQLType | str]],
    ) -> None:
        """Register a table UDF usable in FROM (layer 2)."""
        schema = [
            (
                col_name,
                type_from_name(t) if isinstance(t, str) else t,
            )
            for col_name, t in output_schema
        ]
        udf = self.udfs.register_table(name, func, schema)
        self.analytics.register(TableUDFDescriptor(udf))
        self._cache_epoch += 1

    def register_operator(self, descriptor) -> None:
        """Plug a custom analytics operator into the core (layer 4)."""
        self.analytics.register(descriptor)
        self._cache_epoch += 1

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        if self._session_txn is not None:
            raise TransactionError("transaction already open")
        self._session_txn = self.txns.begin()

    def commit(self) -> None:
        if self._session_txn is None:
            raise TransactionError("no transaction open")
        txn, self._session_txn = self._session_txn, None
        txn.commit()

    def rollback(self) -> None:
        if self._session_txn is None:
            raise TransactionError("no transaction open")
        txn, self._session_txn = self._session_txn, None
        txn.rollback()

    @property
    def in_transaction(self) -> bool:
        return self._session_txn is not None

    @contextmanager
    def transaction(self):
        """``with db.transaction():`` — commit on success, roll back on
        error."""
        self.begin()
        try:
            yield self
        except BaseException:
            if self._session_txn is not None:
                self.rollback()
            raise
        else:
            self.commit()

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------

    @contextmanager
    def _governed(
        self, timeout_ms=_UNSET, memory_budget_mb=_UNSET,
        cancel_token=None,
    ):
        """Install a per-statement :class:`QueryContext` on this thread.

        Re-entrant: a statement executed from inside another governed
        call (``executemany``'s per-row loop) shares the outer governor,
        so one deadline/budget covers the whole batch. On a governor
        abort the matching session counter is bumped; the final report
        always lands in :attr:`last_governor`.

        ``cancel_token`` lets a caller hand in a pre-made
        :class:`~repro.governor.CancelToken` targeting *this call only*
        — the server uses one per request so cancelling one session
        never touches another's statement; :meth:`cancel` still reaches
        every in-flight governor."""
        existing = getattr(self._stmt_local, "governor", None)
        if existing is not None:
            yield existing
            return
        effective_timeout = (
            self.timeout_ms if timeout_ms is _UNSET else timeout_ms
        )
        effective_budget_mb = (
            self.memory_budget_mb
            if memory_budget_mb is _UNSET
            else memory_budget_mb
        )
        budget_bytes = (
            int(effective_budget_mb * 1024 * 1024)
            if effective_budget_mb is not None and effective_budget_mb > 0
            else None
        )
        governor = QueryContext(
            timeout_ms=effective_timeout,
            memory_budget_bytes=budget_bytes,
            cancel_token=cancel_token,
            chaos=self.chaos,
        )
        self._stmt_local.governor = governor
        with self._governor_lock:
            self._active_governors.append(governor)
        try:
            yield governor
        except ResourceGovernorError as exc:
            for exc_type, counter in _GOVERNOR_COUNTERS:
                if isinstance(exc, exc_type):
                    self.metrics.counter(counter).inc()
                    break
            raise
        finally:
            self._stmt_local.governor = None
            with self._governor_lock:
                try:
                    self._active_governors.remove(governor)
                except ValueError:
                    pass
            self.last_governor = governor.report()

    def execute(
        self,
        sql: str,
        params: Optional[Sequence[object]] = None,
        *,
        timeout_ms=_UNSET,
        memory_budget_mb=_UNSET,
        cancel_token=None,
    ) -> QueryResult:
        """Execute one or more ``;``-separated statements; returns the
        result of the last one.

        ``params`` fills ``?`` placeholders positionally; values become
        literals during parsing and are never string-interpolated, so
        user input cannot inject SQL.

        ``timeout_ms`` / ``memory_budget_mb`` override the session
        defaults for this call (``None`` or ``<= 0`` disables the
        corresponding limit). ``cancel_token`` installs a caller-owned
        :class:`~repro.governor.CancelToken` scoped to this call."""
        tracer = self._tracer
        started = time.perf_counter()
        started_at = time.time()
        self._stmt_local.record_info = {}
        governor: Optional[QueryContext] = None
        error: Optional[BaseException] = None
        try:
            with self._governed(
                timeout_ms, memory_budget_mb, cancel_token
            ) as gov:
                governor = gov
                with tracer.statement(sql) as stmt:
                    self._record_info()["span"] = stmt
                    result = self._execute_with_plan_cache(sql, params)
                    if result is None:
                        with tracer.span("parse"):
                            statements = parse_sql(sql, params)
                        if not statements:
                            raise BindError("empty statement")
                        result = QueryResult.statement(0)
                        for statement in statements:
                            result = self._execute_statement(statement)
                    stmt.attributes["rows"] = len(result)
                    return result
        except BaseException as exc:
            error = exc
            self.metrics.counter("statement_errors_total").inc()
            raise
        finally:
            self.metrics.histogram("statement_seconds").observe(
                time.perf_counter() - started
            )
            self._finish_statement(sql, started_at, governor, error)

    def query(
        self,
        sql: str,
        params: Optional[Sequence[object]] = None,
        *,
        timeout_ms=_UNSET,
        memory_budget_mb=_UNSET,
        cancel_token=None,
    ) -> QueryResult:
        """Alias of :meth:`execute` for read-style call sites."""
        return self.execute(
            sql, params,
            timeout_ms=timeout_ms, memory_budget_mb=memory_budget_mb,
            cancel_token=cancel_token,
        )

    def executemany(
        self,
        sql: str,
        seq_of_params: Iterable[Sequence[object]],
        *,
        timeout_ms=_UNSET,
        memory_budget_mb=_UNSET,
    ) -> int:
        """Run one parameterised statement per parameter tuple inside a
        single transaction; returns the total affected row count.

        A plain ``INSERT ... VALUES`` of placeholders/literals takes a
        bulk fast path: the statement is parsed and resolved **once**,
        every row is coerced against the schema, and a single
        ``insert_rows`` installs them all. Other statements loop over
        :meth:`execute`, where the plan cache amortises the per-call
        parse/bind/optimize instead.

        The batch is atomic even when interrupted mid-way
        (KeyboardInterrupt, governor abort, injected fault): in
        autocommit the owned transaction rolls back; inside an explicit
        session transaction the batch unwinds to a savepoint taken at
        entry, leaving earlier statements of the transaction intact.
        One governor covers the whole batch."""
        rows = [tuple(params) for params in seq_of_params]
        if not rows:
            return 0
        with self._governed(timeout_ms, memory_budget_mb):
            fast = self._executemany_insert(sql, rows)
            if fast is not None:
                return fast
            total = 0
            owned = self._session_txn is None
            savepoint = None
            if owned:
                self.begin()
            else:
                savepoint = self._session_txn.savepoint()
            try:
                for params in rows:
                    result = self.execute(sql, params)
                    total += max(result.rowcount, 0)
            except BaseException:
                if owned:
                    if self._session_txn is not None:
                        self.rollback()
                elif (
                    self._session_txn is not None
                    and self._session_txn.status == "active"
                ):
                    # Partial batch inside a caller-owned transaction:
                    # unwind to the entry savepoint, keep the txn open.
                    self._session_txn.rollback_to(savepoint)
                raise
            if owned:
                self.commit()
            return total

    def _executemany_insert(
        self, sql: str, rows: list[tuple]
    ) -> Optional[int]:
        """The bulk-INSERT fast path of :meth:`executemany`, or None
        when the statement doesn't qualify (caller falls back to the
        per-row loop, which reports any parse/bind error itself)."""
        try:
            statements = parse_sql(
                sql, list(rows[0]), parameterize=True
            )
        except ReproError:
            return None
        if len(statements) != 1:
            return None
        statement = statements[0]
        if not isinstance(statement, ast.Insert):
            return None
        if statement.query is not None or not statement.rows:
            return None
        cells = [cell for row in statement.rows for cell in row]
        if not all(
            isinstance(cell, (ast.Placeholder, ast.Literal))
            for cell in cells
        ):
            return None
        n_params = len(rows[0])
        started_at = time.time()
        self._stmt_local.record_info = {}
        governor = getattr(self._stmt_local, "governor", None)
        error: Optional[BaseException] = None
        try:
            return self._executemany_insert_traced(
                sql, rows, statement, n_params
            )
        except BaseException as exc:
            error = exc
            raise
        finally:
            self._finish_statement(sql, started_at, governor, error)

    def _executemany_insert_traced(
        self, sql, rows, statement, n_params
    ) -> int:
        with self._tracer.statement(sql) as stmt:
            self._record_info()["span"] = stmt
            txn, owned = self._current_txn()
            savepoint = None if owned else txn.savepoint()
            try:
                schema = txn.schema_of(statement.table)
                target_columns = statement.columns or schema.names()
                positions = [
                    schema.index_of(name) for name in target_columns
                ]
                width = len(schema)
                types = [
                    schema.columns[pos].sql_type for pos in positions
                ]
                rows_out = []
                for params in rows:
                    if len(params) != n_params:
                        raise BindError(
                            f"executemany row has {len(params)} "
                            f"parameters, expected {n_params}"
                        )
                    for template in statement.rows:
                        if len(template) != len(positions):
                            raise BindError(
                                f"INSERT expects {len(positions)} "
                                f"values, got {len(template)}"
                            )
                        full: list[object] = [None] * width
                        for pos, sql_type, cell in zip(
                            positions, types, template
                        ):
                            value = (
                                params[cell.index]
                                if isinstance(cell, ast.Placeholder)
                                else cell.value
                            )
                            full[pos] = (
                                None
                                if value is None
                                else coerce_scalar(value, sql_type)
                            )
                        rows_out.append(tuple(full))
                count = txn.insert_rows(statement.table, rows_out)
                # Metric parity with the per-row path: each parameter
                # tuple counts as one executed statement.
                self.metrics.counter(
                    "statements_total", kind="Insert"
                ).inc(len(rows))
                stmt.attributes["rows"] = count
                if owned:
                    txn.commit()
                return count
            except BaseException:
                if owned:
                    txn.rollback()
                elif txn.status == "active":
                    # Inside a session transaction: discard this batch's
                    # partial writes, keep earlier statements intact.
                    txn.rollback_to(savepoint)
                raise

    def explain(self, sql: str) -> str:
        """The optimized logical plan of a SELECT, as text.

        Each node carries its estimated row count and the estimate's
        provenance: ``static`` (hard-wired selectivities), ``stats``
        (table statistics: dictionary NDV, zone-map min/max, null
        counts), or ``feedback`` (observed cardinalities from earlier
        executions of the same statement fingerprint).
        """
        statement = parse_sql(sql)
        if len(statement) != 1 or not isinstance(
            statement[0], ast.SelectStatement
        ):
            raise BindError("EXPLAIN supports a single SELECT statement")
        fingerprint = sql_fingerprint(sql)
        txn, owned = self._current_txn()
        try:
            with self._tracer.statement(sql):
                plan = self._plan_select(
                    statement[0], txn, fingerprint=fingerprint
                )
            estimator = self._make_estimator(txn, fingerprint)
            return explain_with_estimates(plan, estimator)
        finally:
            if owned:
                txn.rollback()

    def explain_analyze(
        self,
        sql: str,
        params: Optional[Sequence[object]] = None,
        *,
        timeout_ms=_UNSET,
        memory_budget_mb=_UNSET,
    ) -> AnalyzedQuery:
        """Execute a single SELECT with per-operator instrumentation.

        Every physical operator reports rows/batches in and out, call
        count, and inclusive wall time; the returned
        :class:`AnalyzedQuery` carries the result rows plus the stats
        tree (``.root``, ``.operators()``, ``str(...)`` for the
        rendered form) and the statement's final governor report
        (``.governor``: verdict, checkpoints, peak accounted bytes).
        Iterative operators (ITERATE, recursive CTEs) accumulate their
        init/step/stop children over all rounds.
        """
        started_at = time.time()
        self._stmt_local.record_info = {}
        governor: Optional[QueryContext] = None
        error: Optional[BaseException] = None
        try:
            with self._governed(timeout_ms, memory_budget_mb) as gov:
                governor = gov
                analyzed = self._explain_analyze_inner(sql, params)
                analyzed.governor = governor.report()
                return analyzed
        except BaseException as exc:
            error = exc
            raise
        finally:
            self._finish_statement(sql, started_at, governor, error)

    def _explain_analyze_inner(
        self, sql: str, params: Optional[Sequence[object]]
    ) -> AnalyzedQuery:
        tracer = self._tracer
        counters_before = self._hot_path_counter_values()
        with tracer.statement(sql) as stmt:
            self._record_info()["span"] = stmt
            txn, owned = self._current_txn()
            try:
                # Get-or-populate the plan cache first, so repeated
                # explain_analyze of a statement shows the hit counters
                # moving (and shares plans with execute()).
                query_params: list = []
                plan = cached = self._lookup_cached_plan(
                    sql, params, txn
                )
                if cached is not None:
                    query_params = (
                        list(params) if params is not None else []
                    )
                else:
                    with tracer.span("parse"):
                        statements = parse_sql(sql, params)
                    if len(statements) != 1 or not isinstance(
                        statements[0], ast.SelectStatement
                    ):
                        raise BindError(
                            "explain_analyze supports a single SELECT "
                            "statement"
                        )
                    plan = self._plan_select(
                        statements[0], txn,
                        fingerprint=sql_fingerprint(sql),
                    )
                ctx = self._make_exec_context(
                    txn, fingerprint=sql_fingerprint(sql)
                )
                ctx.profile = True
                if query_params:
                    ctx.query_params = {
                        f"?{i}": value
                        for i, value in enumerate(query_params)
                    }
                with tracer.span("plan"):
                    op = build_physical(plan, ctx)
                started = time.perf_counter()
                with tracer.span("execute"):
                    batch = materialize(
                        list(op.execute(ctx.new_eval_context())),
                        plan.output,
                    )
                total_s = time.perf_counter() - started
                self.last_stats = ctx.stats
                self._record_info()["profile_roots"] = ctx.profile_roots
                self._flush_exec_metrics(ctx)
                result = QueryResult.from_batch(batch, plan.output)
                result.telemetry = dict(ctx.telemetry)
                stmt.attributes["rows"] = len(result)
                if owned:
                    txn.commit()
                return AnalyzedQuery(
                    result, ctx.profile_roots[0], ctx.profile_roots[1:],
                    total_s,
                    counters=self._hot_path_counter_delta(
                        counters_before
                    ),
                )
            except BaseException:
                if owned and txn.status == "active":
                    txn.rollback()
                raise

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        """The session tracer (exporters read its recent root spans —
        :func:`repro.obs.timeline.export_chrome_trace` renders them as
        a Chrome-trace / Perfetto timeline)."""
        return self._tracer

    def last_trace(self) -> Optional[Span]:
        """The span tree of the most recent completed statement: a
        ``statement`` root whose children are the lifecycle phases
        (``parse``, ``bind``, ``optimize``, ``plan``, ``execute``), with
        one ``iteration`` span per round under ``execute`` for ITERATE
        and recursive CTEs. ``None`` before the first statement."""
        return self._tracer.last_root

    def query_log(self, n: int = 20) -> list[QueryLogEntry]:
        """The most recent ``n`` statements (oldest first): SQL text,
        total and per-phase timings, row count, and the error message
        for statements that failed."""
        return self._tracer.log(n)

    def _record_info(self) -> dict:
        """This thread's per-statement recording scratch (statement
        span, plan-cache hit flag, profiled operator trees). Thread
        local so concurrent sessions sharing one Database never mix
        their records up."""
        info = getattr(self._stmt_local, "record_info", None)
        if info is None:
            info = self._stmt_local.record_info = {}
        return info

    def _finish_statement(
        self,
        sql: str,
        started_at: float,
        governor: Optional[QueryContext],
        error: Optional[BaseException],
    ) -> None:
        """History + flight recording after one statement finishes
        (success and abort alike). Must never raise — a recording bug
        must not turn a finished statement into a failed one."""
        info = getattr(self._stmt_local, "record_info", None) or {}
        self._stmt_local.record_info = None
        staged_phases = getattr(
            self._stmt_local, "staged_phases", None
        )
        self._stmt_local.staged_phases = None
        span = info.get("span")
        if span is None:
            return
        fingerprint = sql_fingerprint(sql)
        # Capture governor scalars now (the context is frozen once the
        # statement ends) and defer record assembly to the first reader
        # — the always-on cost per statement is just this bookkeeping.
        gov = (
            {
                "verdict": governor.verdict,
                "checkpoints": governor.checkpoints,
                "peak_bytes": governor.peak_bytes,
            }
            if governor is not None
            else None
        )
        profile_roots = info.get("profile_roots") or ()
        cache_hit = bool(info.get("cache_hit"))
        workers = self.workers
        encoding = self.encoding

        def build():
            return record_from_span(
                span,
                fingerprint=fingerprint,
                started_at=started_at,
                governor=gov,
                operators=operator_observations(profile_roots),
                cache_hit=cache_hit,
                workers=workers,
                encoding=encoding,
                extra_phases=staged_phases,
            )

        try:
            self.history.record_deferred(
                build, fingerprint=fingerprint,
                duration_s=span.duration_s,
            )
        except Exception:  # noqa: BLE001 — see docstring
            self.metrics.counter("history_record_errors_total").inc()
        if error is not None and isinstance(
            error, (ResourceGovernorError, InjectedFault)
        ):
            report = governor.report() if governor is not None else None
            reason = (report or {}).get("verdict") or "error"
            if reason == "ok":
                # An operator-level injected fault bypasses the
                # governor's verdict stamping.
                reason = (
                    "injected_fault"
                    if isinstance(error, InjectedFault)
                    else "governor"
                )
            self.flight.dump(
                reason, error=error, governor=report, trace=span
            )

    def table_names(self) -> list[str]:
        txn, owned = self._current_txn()
        try:
            return txn.visible_tables()
        finally:
            if owned:
                txn.rollback()

    def table_schema(self, name: str) -> TableSchema:
        txn, owned = self._current_txn()
        try:
            return txn.schema_of(name)
        finally:
            if owned:
                txn.rollback()

    def row_count(self, name: str) -> int:
        txn, owned = self._current_txn()
        try:
            return txn.read(name).row_count
        finally:
            if owned:
                txn.rollback()

    def storage_stats(self) -> dict:
        """Per-table storage footprint of the latest committed
        versions: encoded bytes actually held vs the bytes a raw
        columnar layout would spend (VARCHAR accounted as an 8-byte
        slot plus the string payload per row), and each column's
        physical layout. Also refreshes the ``storage_bytes_raw`` /
        ``storage_bytes_encoded`` gauges, so the footprint win is
        visible next to the engine's other metrics."""
        ts = self.catalog.current_ts
        tables = {}
        raw_total = encoded_total = 0
        for name in self.catalog.table_names(ts):
            data = self.catalog.data(name, ts)
            raw = sum(column_raw_nbytes(c) for c in data.columns)
            encoded = sum(c.nbytes for c in data.columns)
            tables[name] = {
                "rows": data.row_count,
                "raw_bytes": raw,
                "encoded_bytes": encoded,
                "columns": {
                    schema_col.name: column_encoding_of(col)
                    for schema_col, col in zip(
                        data.schema, data.columns
                    )
                },
            }
            raw_total += raw
            encoded_total += encoded
        self.metrics.gauge("storage_bytes_raw").set(raw_total)
        self.metrics.gauge("storage_bytes_encoded").set(encoded_total)
        return {
            "encoding": self.encoding,
            "raw_bytes": raw_total,
            "encoded_bytes": encoded_total,
            "tables": tables,
        }

    def load_csv(
        self,
        table: str,
        path: str,
        delimiter: str = ",",
        header: bool = True,
        create: bool = True,
        column_types=None,
    ) -> int:
        """Bulk-load a CSV file (see :mod:`repro.api.csv_io`)."""
        from .csv_io import load_csv

        return load_csv(
            self, table, path, delimiter=delimiter, header=header,
            create=create, column_types=column_types,
        )

    def vacuum(self) -> int:
        """Garbage-collect table versions no active snapshot can reach;
        returns the number of versions freed."""
        return self.txns.vacuum()

    def insert_rows(
        self, table: str, rows: Iterable[Sequence[object]]
    ) -> int:
        """Bulk-load Python rows (bypasses SQL parsing — the fast path
        data scientists get from HyPer-style bulk loading)."""
        txn, owned = self._current_txn()
        try:
            count = txn.insert_rows(table, rows)
            if owned:
                txn.commit()
            return count
        except BaseException:
            if owned and txn.status == "active":
                txn.rollback()
            raise

    def load_columns(
        self, table: str, columns: dict[str, np.ndarray]
    ) -> int:
        """Bulk-load numpy columns directly into a table (zero-copy
        where dtypes already match). Column names must cover the schema.
        Note: this fast path bypasses the WAL."""
        txn, owned = self._current_txn()
        try:
            current = txn.read(table)
            schema = current.schema
            cols = []
            for col_schema in schema:
                if col_schema.name not in columns:
                    raise CatalogError(
                        f"load_columns: missing column "
                        f"{col_schema.name!r}"
                    )
            lengths = {len(v) for v in columns.values()}
            if len(lengths) != 1:
                raise CatalogError("load_columns: ragged input")
            for col_schema in schema:
                values = np.asarray(columns[col_schema.name])
                target = col_schema.sql_type.numpy_dtype()
                if values.dtype != target:
                    values = values.astype(target)
                cols.append(Column(values, col_schema.sql_type))
            addition = TableData(schema, cols)
            txn.write(table, current.append_data(addition))
            if owned:
                txn.commit()
            return addition.row_count
        except BaseException:
            if owned and txn.status == "active":
                txn.rollback()
            raise

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _current_txn(self) -> tuple[Transaction, bool]:
        """(transaction, owned): owned means this statement must
        commit/abort it (autocommit)."""
        if self._session_txn is not None:
            return self._session_txn, False
        return self.txns.begin(), True

    def _make_binder(
        self, txn: Transaction, param_types=None
    ) -> Binder:
        return Binder(
            _TxnCatalogView(txn), self.udfs, self.analytics,
            param_types=param_types,
        )

    def _make_exec_context(
        self, txn: Transaction, fingerprint: Optional[str] = None
    ) -> ExecutionContext:
        ctx = ExecutionContext(
            read_table=txn.read,
            analytics=self.analytics,
            udfs=self.udfs,
            morsel_rows=self.morsel_rows,
            max_iterations=self.max_iterations,
            tracer=self._tracer,
            metrics=self.metrics,
            pool=self.pool,
            parallel_threshold=self.parallel_threshold,
            governor=getattr(self._stmt_local, "governor", None),
        )
        ctx.profile = self.profile_operators
        ctx.topn = self.topn_enabled
        if ctx.profile:
            # Stamp the optimizer's cardinality estimate — and its
            # provenance (static / stats / feedback) — onto every
            # profiled operator so explain_analyze and the history
            # store can report estimated vs observed rows (q-error).
            ctx.estimator = self._make_estimator(txn, fingerprint)
        # One switch for the whole hot-path stack: the session's
        # plan-cache setting also gates kernel caching, zone-map
        # pruning, fused pipelines, and the CSR cache.
        active = self.plan_cache_active()
        ctx.hot_path = active
        ctx.compiler.enabled = active
        return ctx

    def _flush_exec_metrics(self, ctx: ExecutionContext) -> None:
        """Fold one statement's :class:`ExecutionStats` and profiled
        operator trees into the session metrics registry."""
        stats = ctx.stats
        batches = 0
        for root in ctx.profile_roots:
            for node in root.walk():
                batches += node.batches_out
                self.metrics.histogram(
                    "operator_self_seconds", op=node.operator_class
                ).observe(node.self_s)
        stats.batches_produced += batches
        if stats.rows_scanned:
            self.metrics.counter("exec_rows_scanned_total").inc(
                stats.rows_scanned
            )
        if stats.iterations:
            self.metrics.counter("exec_iterations_total").inc(
                stats.iterations
            )
        if batches:
            self.metrics.counter("exec_batches_total").inc(batches)
        if stats.parallel_pipelines:
            self.metrics.counter("exec_parallel_pipelines_total").inc(
                stats.parallel_pipelines
            )
        if stats.morsels_dispatched:
            self.metrics.counter("exec_morsels_dispatched_total").inc(
                stats.morsels_dispatched
            )
        if stats.morsels_pruned:
            self.metrics.counter("scan_morsels_pruned_total").inc(
                stats.morsels_pruned
            )
        self.metrics.gauge("exec_peak_live_tuples").set(
            stats.peak_live_tuples
        )

    def _feedback_overrides(
        self, fingerprint: Optional[str]
    ) -> Optional[dict]:
        """Observed-cardinality overrides for ``fingerprint``; None when
        feedback is off, the fingerprint is unknown, or profiling (the
        observation source) is disabled."""
        if (
            not self.feedback_enabled
            or not self.profile_operators
            or not fingerprint
        ):
            return None
        overrides = self._feedback.overrides_for(fingerprint)
        return overrides or None

    def _make_estimator(
        self, txn: Transaction, fingerprint: Optional[str] = None
    ) -> CardinalityEstimator:
        return CardinalityEstimator(
            lambda name: txn.read(name).row_count,
            self.analytics,
            stats=TableStatistics(txn.read, self._stats_cache),
            feedback=self._feedback_overrides(fingerprint),
            metrics=self.metrics,
        )

    def _make_optimizer(
        self, txn: Transaction, fingerprint: Optional[str] = None
    ) -> Optimizer:
        def row_count_of(name: str) -> int:
            return txn.read(name).row_count

        return Optimizer(
            row_count_of,
            self.analytics,
            enabled=self.optimize_enabled,
            stats=TableStatistics(txn.read, self._stats_cache),
            feedback=self._feedback_overrides(fingerprint),
            metrics=self.metrics,
        )

    def _plan_select(
        self, statement: ast.SelectStatement, txn, param_types=None,
        fingerprint: Optional[str] = None,
    ):
        with self._tracer.span("bind"):
            plan = self._make_binder(txn, param_types).bind_query(
                statement
            )
        with self._tracer.span("optimize"):
            return self._make_optimizer(txn, fingerprint).optimize(plan)

    # -- statement/plan cache ------------------------------------------

    #: Counters of the hot-path stack, surfaced as a per-statement
    #: delta on :class:`AnalyzedQuery` (docs/performance.md).
    HOT_PATH_COUNTERS = (
        "exec_plan_cache_hits_total",
        "exec_plan_cache_misses_total",
        "expr_kernel_cache_hits_total",
        "expr_kernel_cache_misses_total",
        "scan_morsels_pruned_total",
        "analytics_csr_cache_hits_total",
        "analytics_csr_cache_misses_total",
    )

    def _hot_path_counter_values(self) -> dict:
        counters = self.metrics.snapshot()["counters"]
        return {
            name: counters.get(name, 0.0)
            for name in self.HOT_PATH_COUNTERS
        }

    def _hot_path_counter_delta(self, before: dict) -> dict:
        after = self._hot_path_counter_values()
        return {
            name: after[name] - before[name]
            for name in self.HOT_PATH_COUNTERS
            if after[name] != before[name]
        }

    def plan_cache_active(self) -> bool:
        """Whether the hot-path caches apply to this session right now
        (constructor override, else the REPRO_PLAN_CACHE switch)."""
        if self._plan_cache_enabled is not None:
            return self._plan_cache_enabled
        return cache_enabled()

    def _plan_cache_epoch(self) -> tuple:
        return (self.catalog.ddl_version, self._cache_epoch)

    def _execute_with_plan_cache(
        self, sql: str, params: Optional[Sequence[object]]
    ) -> Optional[QueryResult]:
        """Serve ``sql`` through the plan cache; None means "not
        cacheable — run the ordinary literal-substitution path".

        Only single SELECT statements are cached. Parameter *values*
        never enter the key — only their SQL types do — so a point query
        re-executed with fresh parameters reuses the plan. NULL
        parameters bypass the cache (they bind as NULLTYPE literals with
        their own comparison folding), as does a session transaction
        holding uncommitted local DDL (the snapshot disagrees with the
        committed catalog version the epoch tracks)."""
        if not self.plan_cache_active():
            return None
        values = list(params) if params is not None else []
        if any(value is None for value in values):
            return None
        txn_local = self._session_txn
        if txn_local is not None and (
            txn_local.created_tables or txn_local.dropped_tables
        ):
            return None
        fingerprint = sql_fingerprint(sql)
        if fingerprint is None:
            return None
        try:
            param_types = [infer_literal_type(v) for v in values]
        except ReproError:
            return None
        key = (fingerprint, tuple(t.kind.value for t in param_types))
        epoch = self._plan_cache_epoch()
        entry = self._plan_cache.lookup(key, epoch)
        if isinstance(entry, NegativePlan):
            return None
        txn, owned = self._current_txn()
        try:
            if isinstance(entry, CachedPlan) and self._feedback_stale(
                fingerprint, entry.plan, txn
            ):
                # Observed cardinalities flipped a plan choice: the
                # epoch bump above retired the stale entry; re-plan now
                # under the feedback estimates instead of reusing it.
                entry = None
            if isinstance(entry, CachedPlan):
                self.metrics.counter("exec_plan_cache_hits_total").inc()
                self._record_info()["cache_hit"] = True
                plan = entry.plan
            else:
                self.metrics.counter(
                    "exec_plan_cache_misses_total"
                ).inc()
                plan = self._try_cache_plan(
                    sql, values, param_types, key, txn,
                    fingerprint=fingerprint,
                )
                if plan is None:
                    if owned:
                        txn.rollback()
                    return None
            self.metrics.counter(
                "statements_total", kind="SelectStatement"
            ).inc()
            result = self._execute_plan(
                plan, txn, query_params=values, fingerprint=fingerprint
            )
            if owned:
                txn.commit()
            return result
        except BaseException:
            if owned and txn.status == "active":
                txn.rollback()
            raise

    def _lookup_cached_plan(self, sql, params, txn):
        """Plan-cache get-or-populate against an already-open
        transaction (the ``explain_analyze`` entry point); None when the
        statement is uncacheable or negatively cached. Mirrors the
        bypass rules of :meth:`_execute_with_plan_cache`."""
        if not self.plan_cache_active():
            return None
        values = list(params) if params is not None else []
        if any(value is None for value in values):
            return None
        txn_local = self._session_txn
        if txn_local is not None and (
            txn_local.created_tables or txn_local.dropped_tables
        ):
            return None
        fingerprint = sql_fingerprint(sql)
        if fingerprint is None:
            return None
        try:
            param_types = [infer_literal_type(v) for v in values]
        except ReproError:
            return None
        key = (fingerprint, tuple(t.kind.value for t in param_types))
        entry = self._plan_cache.lookup(key, self._plan_cache_epoch())
        if isinstance(entry, NegativePlan):
            return None
        if isinstance(entry, CachedPlan) and self._feedback_stale(
            fingerprint, entry.plan, txn
        ):
            entry = None
        if isinstance(entry, CachedPlan):
            self.metrics.counter("exec_plan_cache_hits_total").inc()
            self._record_info()["cache_hit"] = True
            return entry.plan
        self.metrics.counter("exec_plan_cache_misses_total").inc()
        return self._try_cache_plan(
            sql, values, param_types, key, txn, fingerprint=fingerprint
        )

    def _feedback_stale(
        self, fingerprint: str, plan, txn: Transaction
    ) -> bool:
        """Whether observed cardinalities would flip a join build side
        the cached ``plan`` committed to. When they would, the plan
        cache epoch is bumped (retiring every entry of the old epoch)
        so the statement re-optimizes under feedback estimates. A
        freshly re-optimized plan is a fixpoint of the build-side rule,
        so at most one bump happens per feedback change — repeated
        executions settle back onto cache hits (the no-thrash
        property)."""
        overrides = self._feedback_overrides(fingerprint)
        if not overrides:
            return False
        estimator = CardinalityEstimator(
            lambda name: txn.read(name).row_count,
            self.analytics,
            stats=TableStatistics(txn.read, self._stats_cache),
            feedback=overrides,
            metrics=self.metrics,
        )
        if not self._feedback.wants_replan(fingerprint, plan, estimator):
            return False
        self._cache_epoch += 1
        self.metrics.counter(
            "plan_cache_feedback_invalidations_total"
        ).inc()
        return True

    def _try_cache_plan(
        self, sql, values, param_types, key, txn, fingerprint=None
    ):
        """Plan ``sql`` in parameterized mode against ``txn`` and cache
        the result; None (after storing a negative entry) when the
        statement cannot take the cached path."""
        epoch = self._plan_cache_epoch()
        try:
            with self._tracer.span("parse"):
                statements = parse_sql(sql, values, parameterize=True)
        except ReproError:
            self._plan_cache.store(key, NegativePlan(epoch))
            return None
        if len(statements) != 1 or not isinstance(
            statements[0], ast.SelectStatement
        ):
            self._plan_cache.store(key, NegativePlan(epoch))
            return None
        try:
            plan = self._plan_select(
                statements[0], txn, param_types=param_types,
                fingerprint=fingerprint,
            )
        except ReproError:
            # LIMIT ?, GROUP BY ?, analytics args, ... need values at
            # bind time; remember that and use the literal path.
            self._plan_cache.store(key, NegativePlan(epoch))
            return None
        self._plan_cache.store(key, CachedPlan(plan, epoch))
        return plan

    def _execute_plan(
        self,
        plan,
        txn: Transaction,
        query_params: Optional[Sequence[object]] = None,
        fingerprint: Optional[str] = None,
    ) -> QueryResult:
        """Instantiate and run physical operators for an optimized
        logical plan (fresh or cached)."""
        ctx = self._make_exec_context(txn, fingerprint=fingerprint)
        if query_params:
            ctx.query_params = {
                f"?{i}": value for i, value in enumerate(query_params)
            }
        with self._tracer.span("plan"):
            op = build_physical(plan, ctx)
        try:
            with self._tracer.span("execute"):
                batch = materialize(
                    list(op.execute(ctx.new_eval_context())), plan.output
                )
        finally:
            # Publish even when execution aborts (iteration limit, ...):
            # rounds already executed stay observable.
            self.last_stats = ctx.stats
            self._record_info()["profile_roots"] = ctx.profile_roots
            self._flush_exec_metrics(ctx)
        result = QueryResult.from_batch(batch, plan.output)
        result.telemetry = dict(ctx.telemetry)
        return result

    def _execute_statement(self, statement: ast.Statement) -> QueryResult:
        self.metrics.counter(
            "statements_total", kind=type(statement).__name__
        ).inc()
        if isinstance(statement, ast.BeginTransaction):
            self.begin()
            return QueryResult.statement(0)
        if isinstance(statement, ast.CommitTransaction):
            self.commit()
            return QueryResult.statement(0)
        if isinstance(statement, ast.RollbackTransaction):
            self.rollback()
            return QueryResult.statement(0)

        txn, owned = self._current_txn()
        try:
            if isinstance(statement, ast.SelectStatement):
                result = self._run_select(statement, txn)
            elif isinstance(statement, ast.Explain):
                plan = self._plan_select(statement.query, txn)
                lines = explain_with_estimates(
                    plan, self._make_estimator(txn)
                ).splitlines()
                result = QueryResult(
                    columns=["plan"],
                    types=[type_from_name("VARCHAR")],
                    batch=ColumnBatch(
                        {
                            "plan": Column.from_values(
                                lines, type_from_name("VARCHAR")
                            )
                        }
                    ),
                    slots=["plan"],
                )
            elif isinstance(statement, ast.CreateTable):
                result = self._run_create(statement, txn)
            elif isinstance(statement, ast.DropTable):
                txn.drop_table(statement.name, statement.if_exists)
                result = QueryResult.statement(0)
            elif isinstance(statement, ast.Insert):
                result = self._run_insert(statement, txn)
            elif isinstance(statement, ast.Update):
                result = self._run_update(statement, txn)
            elif isinstance(statement, ast.Delete):
                result = self._run_delete(statement, txn)
            else:
                raise ReproError(
                    f"unsupported statement {type(statement).__name__}"
                )
            if owned:
                txn.commit()
            return result
        except BaseException:
            if owned and txn.status == "active":
                txn.rollback()
            raise

    def _run_select(
        self, statement: ast.SelectStatement, txn: Transaction
    ) -> QueryResult:
        plan = self._plan_select(statement, txn)
        return self._execute_plan(plan, txn)

    def _run_create(
        self, statement: ast.CreateTable, txn: Transaction
    ) -> QueryResult:
        if statement.as_query is not None:
            inner = self._run_select(statement.as_query, txn)
            schema = TableSchema(
                tuple(
                    ColumnSchema(name, sql_type)
                    for name, sql_type in zip(inner.columns, inner.types)
                )
            )
            txn.create_table(
                statement.name, schema, statement.if_not_exists
            )
            txn.insert_rows(statement.name, inner.rows)
            return QueryResult.statement(len(inner))
        columns = []
        for col in statement.columns:
            sql_type = type_from_name(col.type_name, col.width)
            columns.append(ColumnSchema(col.name, sql_type, col.not_null))
        txn.create_table(
            statement.name, TableSchema(tuple(columns)),
            statement.if_not_exists,
        )
        return QueryResult.statement(0)

    def _run_insert(
        self, statement: ast.Insert, txn: Transaction
    ) -> QueryResult:
        schema = txn.schema_of(statement.table)
        target_columns = statement.columns or schema.names()
        positions = [schema.index_of(name) for name in target_columns]

        if statement.query is not None:
            inner = self._run_select(statement.query, txn)
            source_rows = inner.rows
        else:
            assert statement.rows is not None
            source_rows = self._evaluate_value_rows(statement.rows, txn)

        width = len(schema)
        rows_out = []
        for row in source_rows:
            if len(row) != len(positions):
                raise BindError(
                    f"INSERT expects {len(positions)} values, got "
                    f"{len(row)}"
                )
            full: list[object] = [None] * width
            for pos, value in zip(positions, row):
                col_schema = schema.columns[pos]
                full[pos] = (
                    None
                    if value is None
                    else coerce_scalar(value, col_schema.sql_type)
                )
            rows_out.append(tuple(full))
        count = txn.insert_rows(statement.table, rows_out)
        return QueryResult.statement(count)

    def _evaluate_value_rows(
        self, rows: list[list[ast.Expr]], txn: Transaction
    ) -> list[tuple]:
        binder = self._make_binder(txn)
        ctx = self._make_exec_context(txn)
        from ..exec.scan import ValuesOp
        from ..types import INTEGER

        one_row = ColumnBatch(
            {ValuesOp.CARRIER: Column(np.zeros(1, np.int32), INTEGER)}
        )
        eval_ctx = ctx.new_eval_context()
        out = []
        for row in rows:
            values = []
            for cell in row:
                bound = binder.bind_standalone(cell, [])
                compiled = ctx.compiler.compile(bound)
                values.append(compiled(one_row, eval_ctx).value_at(0))
            out.append(tuple(values))
        return out

    def _table_as_batch(
        self, data: TableData
    ) -> tuple[ColumnBatch, list[PlanColumn]]:
        columns = [
            PlanColumn(c.name, f"u.{c.name}", c.sql_type)
            for c in data.schema
        ]
        batch = ColumnBatch(
            {
                col.slot: data.columns[i]
                for i, col in enumerate(columns)
            }
        )
        return batch, columns

    def _run_update(
        self, statement: ast.Update, txn: Transaction
    ) -> QueryResult:
        data = txn.read(statement.table)
        batch, columns = self._table_as_batch(data)
        binder = self._make_binder(txn)
        ctx = self._make_exec_context(txn)
        eval_ctx = ctx.new_eval_context()

        if statement.where is not None:
            predicate = binder.bind_standalone(statement.where, columns)
            mask = truth_mask(
                ctx.compiler.compile(predicate)(batch, eval_ctx)
            )
        else:
            mask = np.ones(data.row_count, dtype=np.bool_)

        replacements: dict[int, Column] = {}
        for col_name, expr in statement.assignments:
            ordinal = data.schema.index_of(col_name)
            target_schema = data.schema.columns[ordinal]
            bound = binder.bind_standalone(expr, columns)
            new_col = ctx.compiler.compile(bound)(batch, eval_ctx)
            new_col = new_col.cast(target_schema.sql_type)
            old_col = data.columns[ordinal]
            merged_values = np.where(mask, new_col.values, old_col.values)
            if data.schema.columns[ordinal].sql_type.numpy_dtype() == object:
                merged_values = merged_values.astype(object)
            else:
                merged_values = merged_values.astype(
                    target_schema.sql_type.numpy_dtype()
                )
            merged_valid = np.where(
                mask, new_col.validity(), old_col.validity()
            )
            if target_schema.not_null and not merged_valid.all():
                raise CatalogError(
                    f"NULL in NOT NULL column {col_name!r}"
                )
            replacements[ordinal] = Column(
                merged_values, target_schema.sql_type, merged_valid
            )
        new_data = data.replace_columns(replacements)
        txn.write(statement.table, new_data)
        self._log_replace(txn, statement.table, new_data)
        updated = int(mask.sum())
        self.metrics.counter("storage_rows_updated_total").inc(updated)
        return QueryResult.statement(updated)

    def _run_delete(
        self, statement: ast.Delete, txn: Transaction
    ) -> QueryResult:
        data = txn.read(statement.table)
        batch, columns = self._table_as_batch(data)
        if statement.where is None:
            keep = np.zeros(data.row_count, dtype=np.bool_)
        else:
            binder = self._make_binder(txn)
            ctx = self._make_exec_context(txn)
            predicate = binder.bind_standalone(statement.where, columns)
            mask = truth_mask(
                ctx.compiler.compile(predicate)(
                    batch, ctx.new_eval_context()
                )
            )
            keep = ~mask
        deleted = int(data.row_count - keep.sum())
        new_data = data.delete_where(keep)
        txn.write(statement.table, new_data)
        self._log_replace(txn, statement.table, new_data)
        self.metrics.counter("storage_rows_deleted_total").inc(deleted)
        return QueryResult.statement(deleted)

    def _log_replace(
        self, txn: Transaction, table: str, data: TableData
    ) -> None:
        """Record a whole-table replacement in the WAL (UPDATE/DELETE)."""
        if self.txns.wal is None:
            return
        txn._log.append(("replace", table.lower(), list(data.rows())))


def connect(wal_path: Optional[str] = None, **kwargs) -> Database:
    """Open a database session (sqlite3-flavoured convenience)."""
    return Database(wal_path=wal_path, **kwargs)
