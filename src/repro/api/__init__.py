"""Public database API: :class:`Database` sessions and query results."""

from .database import Database, connect
from .result import QueryResult

__all__ = ["Database", "connect", "QueryResult"]
