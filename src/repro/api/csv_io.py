"""CSV bulk loading and export.

The paper lists fast data loading among the properties making HyPer
attractive to data scientists (section 3, citing the Instant Loading
work). This module provides the equivalent convenience: columnar CSV
ingestion that parses whole columns with numpy instead of row-at-a-time
Python, plus result export.

Dialect: comma-separated (configurable), optional header row, ``""``
quoting with doubled-quote escapes, empty fields read as NULL.
"""

from __future__ import annotations

import csv as _csv
import io
from typing import Optional, Sequence

import numpy as np

from ..errors import CatalogError
from ..types import (
    BOOLEAN,
    DOUBLE,
    BIGINT,
    SQLType,
    TypeKind,
    VARCHAR,
    type_from_name,
)


def _parse_column(
    raw: list[Optional[str]],
    sql_type: SQLType,
    name: str = "?",
    first_data_row: int = 1,
) -> list[object]:
    """Convert one column of raw strings to Python values.

    Un-coercible values raise :class:`~repro.errors.CatalogError` with
    the offending row/column, never a bare ``ValueError`` — and the
    caller parses *before* any DDL or insert, so a bad file leaves the
    database untouched."""
    kind = sql_type.kind
    out: list[object] = [None] * len(raw)
    for i, text in enumerate(raw):
        if text is None or text == "":
            continue
        try:
            if kind in (
                TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.DATE
            ):
                out[i] = int(text)
            elif kind is TypeKind.DOUBLE:
                out[i] = float(text)
            elif kind is TypeKind.BOOLEAN:
                lowered = text.strip().lower()
                out[i] = lowered in ("true", "t", "1", "yes")
            else:
                out[i] = text
        except ValueError as exc:
            raise CatalogError(
                f"CSV row {first_data_row + i}, column {name!r}: "
                f"cannot convert {text!r} to {sql_type}"
            ) from exc
    return out


def infer_column_type(values: Sequence[Optional[str]]) -> SQLType:
    """Infer a SQL type from raw CSV strings: BIGINT if every non-empty
    value parses as an integer, DOUBLE if as a float, BOOLEAN for
    true/false-ish tokens, else VARCHAR."""
    non_empty = [v for v in values if v not in (None, "")]
    if not non_empty:
        return VARCHAR
    booleans = {"true", "false", "t", "f", "yes", "no", "0", "1"}
    if all(v.strip().lower() in booleans for v in non_empty) and any(
        v.strip().lower() not in ("0", "1") for v in non_empty
    ):
        return BOOLEAN
    try:
        for v in non_empty:
            int(v)
        return BIGINT
    except ValueError:
        pass
    try:
        for v in non_empty:
            float(v)
        return DOUBLE
    except ValueError:
        pass
    return VARCHAR


def load_csv(
    db,
    table: str,
    path: str,
    delimiter: str = ",",
    header: bool = True,
    create: bool = True,
    column_types: Optional[dict[str, SQLType | str]] = None,
) -> int:
    """Bulk-load a CSV file into ``table``; returns rows loaded.

    With ``create`` (default) the table is created if missing, with
    column names from the header (or ``c1..cn``) and types inferred per
    column (overridable via ``column_types``). Against an existing
    table, columns are matched positionally to the schema.
    """
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = _csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if not rows:
        raise CatalogError(f"CSV file {path!r} is empty")

    if header:
        names = [name.strip() for name in rows[0]]
        body = rows[1:]
    else:
        names = [f"c{i + 1}" for i in range(len(rows[0]))]
        body = rows
    width = len(names)
    for i, row in enumerate(body):
        if len(row) != width:
            raise CatalogError(
                f"CSV row {i + (2 if header else 1)} has {len(row)} "
                f"fields, expected {width}"
            )

    columns_raw: list[list[Optional[str]]] = [
        [row[j] for row in body] for j in range(width)
    ]

    ddl = None
    if db.catalog.has_table(table):
        schema = db.table_schema(table)
        if len(schema) != width:
            raise CatalogError(
                f"CSV has {width} columns, table {table!r} has "
                f"{len(schema)}"
            )
        types = schema.types()
    else:
        if not create:
            raise CatalogError(f"no such table: {table!r}")
        overrides = {
            k.lower(): (
                type_from_name(v) if isinstance(v, str) else v
            )
            for k, v in (column_types or {}).items()
        }
        types = [
            overrides.get(name.lower(), infer_column_type(col))
            for name, col in zip(names, columns_raw)
        ]
        ddl_cols = ", ".join(
            f'"{name}" {t}' for name, t in zip(names, types)
        )
        ddl = f"CREATE TABLE {table} ({ddl_cols})"

    # Parse every value BEFORE touching the catalog: a malformed file
    # must leave no stray table and no partial rows behind.
    first_data_row = 2 if header else 1
    parsed = [
        _parse_column(col, t, name, first_data_row)
        for col, t, name in zip(columns_raw, types, names)
    ]
    row_tuples = list(zip(*parsed)) if parsed and parsed[0] else []
    if ddl is not None:
        db.execute(ddl)
    return db.insert_rows(table, row_tuples)


def result_to_csv(
    result, path_or_buffer, delimiter: str = ","
) -> int:
    """Write a :class:`QueryResult` as CSV (header + rows); returns the
    number of data rows written. NULLs become empty fields."""
    owns = isinstance(path_or_buffer, str)
    handle = (
        open(path_or_buffer, "w", encoding="utf-8", newline="")
        if owns
        else path_or_buffer
    )
    try:
        writer = _csv.writer(handle, delimiter=delimiter)
        writer.writerow(result.columns)
        count = 0
        for row in result.rows:
            writer.writerow(
                ["" if v is None else v for v in row]
            )
            count += 1
        return count
    finally:
        if owns:
            handle.close()
