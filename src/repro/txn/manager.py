"""Snapshot-isolation transaction manager.

Transactions read from the catalog version current at their start
timestamp; writes are buffered as transaction-local copy-on-write
:class:`~repro.storage.table.TableData` working copies. Commit uses
first-committer-wins: if any table this transaction wrote has been
committed by someone else since our snapshot, we abort with
:class:`~repro.errors.SerializationConflict`.

This gives the property the paper leans on (section 3): a long-running
analytical query sees one consistent snapshot while OLTP writes continue
to commit concurrently.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from ..errors import CatalogError, SerializationConflict, TransactionError
from ..obs.metrics import MetricsRegistry
from ..storage.catalog import Catalog
from ..storage.encoding import encode_table_data
from ..storage.schema import TableSchema
from ..storage.table import TableData
from .wal import WriteAheadLog


class Transaction:
    """One transaction: a snapshot timestamp plus a private write set."""

    def __init__(self, manager: "TransactionManager", txn_id: int, start_ts: int):
        self._manager = manager
        self.txn_id = txn_id
        self.start_ts = start_ts
        self.write_set: dict[str, TableData] = {}
        self.created_tables: dict[str, TableSchema] = {}
        self.dropped_tables: set[str] = set()
        self.status = "active"
        self._log: list[tuple] = []

    # -- reads ---------------------------------------------------------------

    def read(self, name: str) -> TableData:
        """The contents of ``name`` as this transaction sees them: its own
        uncommitted writes, else the snapshot version."""
        self._check_active()
        key = name.lower()
        if key in self.dropped_tables:
            raise CatalogError(f"no such table: {name!r}")
        if key in self.write_set:
            return self.write_set[key]
        if key in self.created_tables:
            return TableData.empty(self.created_tables[key])
        return self._manager.catalog.data(key, self.start_ts)

    def table_exists(self, name: str) -> bool:
        key = name.lower()
        if key in self.dropped_tables:
            return False
        if key in self.created_tables or key in self.write_set:
            return True
        return self._manager.catalog.has_table(key, self.start_ts)

    def schema_of(self, name: str) -> TableSchema:
        return self.read(name).schema

    def visible_tables(self) -> list[str]:
        names = set(self._manager.catalog.table_names(self.start_ts))
        names |= set(self.created_tables)
        names -= self.dropped_tables
        return sorted(names)

    # -- writes ----------------------------------------------------------------

    def create_table(
        self, name: str, schema: TableSchema, if_not_exists: bool = False
    ) -> None:
        self._check_active()
        key = name.lower()
        if self.table_exists(key):
            if if_not_exists:
                return
            raise CatalogError(f"table already exists: {name!r}")
        self.dropped_tables.discard(key)
        self.created_tables[key] = schema
        self._log.append(("create_table", key, schema))

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        self._check_active()
        key = name.lower()
        if not self.table_exists(key):
            if if_exists:
                return
            raise CatalogError(f"no such table: {name!r}")
        self.write_set.pop(key, None)
        if key in self.created_tables:
            del self.created_tables[key]
        else:
            self.dropped_tables.add(key)
        self._log.append(("drop_table", key))

    def write(self, name: str, data: TableData) -> None:
        """Stage a full new version of ``name`` (the engine computes the
        new version from the visible one; this installs it in the write
        set).

        This is the one choke point every mutation funnels through
        (INSERT/UPDATE/DELETE/CTAS/bulk load/WAL replay), so the
        session's column-encoding policy is applied here: the staged
        version is re-encoded before it can be read back or committed.
        Rollback needs no special handling — versions are immutable and
        an aborted transaction simply drops its staged ones."""
        self._check_active()
        key = name.lower()
        if not self.table_exists(key):
            raise CatalogError(f"no such table: {name!r}")
        self.write_set[key] = encode_table_data(
            data, self._manager.encoding
        )

    def insert_rows(
        self, name: str, rows: Iterable[Sequence[object]]
    ) -> int:
        """Append rows to a table; returns the number inserted."""
        materialised = [tuple(r) for r in rows]
        current = self.read(name)
        self.write(name, current.append_rows(materialised))
        self._log.append(("insert", name.lower(), materialised))
        self._manager.metrics.counter(
            "storage_rows_inserted_total"
        ).inc(len(materialised))
        return len(materialised)

    # -- savepoints --------------------------------------------------------------

    def savepoint(self) -> tuple:
        """A snapshot of this transaction's buffered state.

        Write-set entries are immutable :class:`TableData` versions, so a
        shallow copy of the dicts is a complete snapshot; the log is
        append-only, so its length suffices."""
        self._check_active()
        return (
            dict(self.write_set),
            dict(self.created_tables),
            set(self.dropped_tables),
            len(self._log),
        )

    def rollback_to(self, sp: tuple) -> None:
        """Restore buffered state to a :meth:`savepoint`, discarding any
        writes staged after it. The transaction stays active."""
        self._check_active()
        write_set, created, dropped, log_len = sp
        self.write_set.clear()
        self.write_set.update(write_set)
        self.created_tables.clear()
        self.created_tables.update(created)
        self.dropped_tables.clear()
        self.dropped_tables.update(dropped)
        del self._log[log_len:]

    # -- lifecycle ----------------------------------------------------------------

    def commit(self) -> int:
        """Atomically publish the write set; returns the commit timestamp
        (or the start timestamp for read-only transactions)."""
        self._check_active()
        ts = self._manager.commit(self)
        self.status = "committed"
        return ts

    def rollback(self) -> None:
        self._check_active()
        self._manager.metrics.counter("txn_rollbacks_total").inc()
        self._manager.finish(self)
        self.write_set.clear()
        self.created_tables.clear()
        self.dropped_tables.clear()
        self._log.clear()
        self.status = "aborted"

    def _check_active(self) -> None:
        if self.status != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status}"
            )

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.status != "active":
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()


class TransactionManager:
    """Hands out transactions and arbitrates commits."""

    def __init__(
        self,
        catalog: Catalog,
        wal: WriteAheadLog | None = None,
        metrics: MetricsRegistry | None = None,
        encoding: str = "raw",
    ):
        self.catalog = catalog
        self.wal = wal
        #: Column-encoding policy applied to every staged table version
        #: (see :mod:`repro.storage.encoding`). A standalone manager
        #: defaults to raw storage; :class:`~repro.api.database.Database`
        #: passes its resolved session policy.
        self.encoding = encoding
        #: Session metrics; a standalone manager gets its own registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.RLock()
        self._next_txn_id = 1
        self._active: dict[int, Transaction] = {}
        #: Called (with no arguments) after every durable non-read-only
        #: commit, while the manager lock is still held (it is
        #: re-entrant). :class:`~repro.api.database.Database` installs
        #: its auto-checkpoint policy here (docs/durability.md).
        self.after_commit = None

    def begin(self) -> Transaction:
        with self._lock:
            txn = Transaction(
                self, self._next_txn_id, self.catalog.current_ts
            )
            self._next_txn_id += 1
            self._active[txn.txn_id] = txn
            self.metrics.counter("txn_begun_total").inc()
            self.metrics.gauge("txn_active").set(len(self._active))
            return txn

    def active_count(self) -> int:
        return len(self._active)

    def oldest_active_ts(self) -> int:
        """Oldest snapshot still in use (vacuum horizon)."""
        with self._lock:
            if not self._active:
                return self.catalog.current_ts
            return min(t.start_ts for t in self._active.values())

    def finish(self, txn: Transaction) -> None:
        with self._lock:
            self._active.pop(txn.txn_id, None)
            self.metrics.gauge("txn_active").set(len(self._active))

    def commit(self, txn: Transaction) -> int:
        """Validate and install a transaction's write set.

        First-committer-wins: any table written by ``txn`` whose newest
        committed version postdates the snapshot causes an abort.
        """
        with self._lock:
            try:
                read_only = (
                    not txn.write_set
                    and not txn.created_tables
                    and not txn.dropped_tables
                )
                if read_only:
                    self.metrics.counter("txn_commits_total").inc()
                    return txn.start_ts

                try:
                    for name in txn.write_set:
                        if name in txn.created_tables:
                            continue
                        latest = self.catalog.latest_commit_ts_of(name)
                        if latest > txn.start_ts:
                            raise SerializationConflict(
                                f"table {name!r} was modified by a "
                                f"concurrent transaction (committed at "
                                f"{latest}, snapshot is {txn.start_ts})"
                            )
                    for name in txn.dropped_tables:
                        latest = self.catalog.latest_commit_ts_of(name)
                        if latest > txn.start_ts:
                            raise SerializationConflict(
                                f"table {name!r} was modified by a "
                                "concurrent transaction; cannot drop"
                            )
                except SerializationConflict:
                    self.metrics.counter("txn_conflicts_total").inc()
                    raise

                if self.wal is not None:
                    written = self.wal.log_commit(txn.txn_id, txn._log)
                    self.metrics.counter(
                        "wal_bytes_written_total"
                    ).inc(written)

                # Install DDL first so created tables exist for writes.
                for name, schema in txn.created_tables.items():
                    self.catalog.create_table(name, schema)
                for name in txn.dropped_tables:
                    self.catalog.drop_table(name)
                updates = [
                    (name, data)
                    for name, data in txn.write_set.items()
                ]
                if updates:
                    ts = self.catalog.install(updates)
                else:
                    ts = self.catalog.current_ts
                self.metrics.counter("txn_commits_total").inc()
                if self.after_commit is not None and self.wal is not None:
                    self.after_commit()
                return ts
            finally:
                self.finish(txn)

    def vacuum(self) -> int:
        """Free table versions no active snapshot can reach."""
        freed = self.catalog.vacuum(self.oldest_active_ts())
        self.metrics.counter("storage_versions_vacuumed_total").inc(
            freed
        )
        return freed
