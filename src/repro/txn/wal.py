"""Write-ahead log (v2): checksummed, length-prefixed, fsync-durable.

Committed transactions append one logical record per operation
(create/drop table, insert, whole-table replace) followed by a commit
marker; all of a transaction's frames are written in one ``write`` and
made durable with one ``fsync`` before the commit is acknowledged.
Recovery replays complete transactions **atomically** (grouped by
transaction id, one commit per original transaction) in commit order.

The engine logs *logical* operations rather than physical page images
because the storage layer is pure main-memory copy-on-write: replaying
logical ops against an empty catalog deterministically reconstructs
state. DELETE and UPDATE are logged as the full replacement row set of
the table (simple and correct for a main-memory engine whose versions
are already whole-table snapshots); ``Database.checkpoint()`` bounds
the resulting log growth (docs/durability.md).

v2 on-disk format
-----------------

::

    file   := magic frame*
    magic  := b"RPWALv2\\n"                      (8 bytes)
    frame  := header payload
    header := length:u32be crc32:u32be seq:u64be (16 bytes)

``length`` is the payload byte count, ``payload`` is one UTF-8 JSON
document, ``seq`` is a per-record monotonically increasing sequence
number (contiguous within one log file), and ``crc32`` covers the
8-byte big-endian ``seq`` followed by the payload. The reader
distinguishes two failure classes:

* **torn tail** — the final frame is incomplete (header or payload
  runs past end-of-file). This is the normal signature of a crash
  mid-append; the tail is truncated and the log continues.
* **corruption** — a frame is *complete* but wrong: CRC mismatch,
  undecodable payload, or a sequence-number break. This means bit rot
  or an overwrite, never a clean crash. In ``recovery="strict"`` mode
  it raises :class:`~repro.errors.WalCorruptionError`; in ``tolerant``
  mode the corrupt suffix is discarded and counted.

Legacy v1 logs (bare JSON lines, the seed format) are still readable:
the format is sniffed at open, and a v1 log is upgraded to v2 framing
at the first checkpoint truncation.

Durability of the file itself: the log keeps **one** append handle
(``O_APPEND``) for its whole life, fsyncs it at every commit, and
fsyncs the *parent directory* when the file is first created (and
after every atomic rename), so a freshly created log cannot vanish
across a crash.

Fault-injection hooks (used by :mod:`repro.testing.crash`):
``REPRO_WAL_FSYNC_FAIL=N`` makes the Nth commit fsync raise (the log
poisons itself afterwards, PostgreSQL-style — a failed fsync leaves
the durable prefix unknowable, so continuing would be a lie);
``REPRO_WAL_KILL_AT_BYTES=X`` SIGKILLs the process the moment the
log's total byte count would cross ``X``, leaving a genuinely torn
frame behind.
"""

from __future__ import annotations

import io
import json
import os
import signal
import struct
import zlib
from typing import Optional, Sequence

from ..errors import TransactionError, WalCorruptionError
from ..types import SQLType, TypeKind
from ..storage.schema import ColumnSchema, TableSchema

#: v2 file magic (8 bytes).
MAGIC = b"RPWALv2\n"

#: Frame header: payload length (u32), crc32 (u32), sequence (u64).
_HEADER = struct.Struct(">IIQ")

#: Sanity cap on a single record's payload (guards the reader against
#: interpreting garbage as a multi-gigabyte length).
MAX_RECORD_BYTES = 1 << 30

#: Environment hooks for deterministic crash injection.
FSYNC_FAIL_ENV = "REPRO_WAL_FSYNC_FAIL"
KILL_AT_BYTES_ENV = "REPRO_WAL_KILL_AT_BYTES"

#: Session knobs (argument beats environment beats default).
RECOVERY_ENV = "REPRO_RECOVERY"
CHECKPOINT_BYTES_ENV = "REPRO_CHECKPOINT_BYTES"


def resolve_recovery(value: Optional[str] = None) -> str:
    """Effective corruption-recovery mode: argument, then
    ``REPRO_RECOVERY``, then ``tolerant``."""
    if value is None:
        value = os.environ.get(RECOVERY_ENV, "").strip() or "tolerant"
    if value not in ("tolerant", "strict"):
        raise ValueError(
            f"recovery must be 'tolerant' or 'strict', got {value!r}"
        )
    return value


def resolve_checkpoint_bytes(value: Optional[int] = None) -> Optional[int]:
    """Effective auto-checkpoint threshold: argument, then
    ``REPRO_CHECKPOINT_BYTES``, then off (``None``). Zero or negative
    disables."""
    if value is None:
        raw = os.environ.get(CHECKPOINT_BYTES_ENV, "").strip()
        if not raw:
            return None
        try:
            value = int(raw)
        except ValueError:
            return None
    return value if value and value > 0 else None


def _schema_to_json(schema: TableSchema) -> list[dict]:
    out = []
    for col in schema:
        out.append(
            {
                "name": col.name,
                "type": col.sql_type.kind.value,
                "width": col.sql_type.width,
                "not_null": col.not_null,
            }
        )
    return out


def _schema_from_json(payload: list[dict]) -> TableSchema:
    cols = []
    for item in payload:
        sql_type = SQLType(TypeKind(item["type"]), item.get("width"))
        cols.append(
            ColumnSchema(item["name"], sql_type, item.get("not_null", False))
        )
    return TableSchema(tuple(cols))


def fsync_directory(path: str) -> None:
    """fsync the directory containing ``path`` so a creation or rename
    inside it is itself durable (POSIX: file data reaching disk does
    not imply the directory entry did)."""
    parent = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ScanInfo:
    """What one pass over the log found (recovery telemetry)."""

    __slots__ = (
        "format",
        "records_scanned",
        "records_discarded",
        "bytes_discarded",
        "torn_bytes",
        "corrupt",
        "corrupt_detail",
        "valid_bytes",
        "last_seq",
    )

    def __init__(self) -> None:
        self.format = "v2"
        self.records_scanned = 0
        #: Records (or, for undecodable garbage, at least one) dropped
        #: because of mid-log corruption — NOT the torn tail.
        self.records_discarded = 0
        self.bytes_discarded = 0
        #: Trailing bytes belonging to an incomplete final frame.
        self.torn_bytes = 0
        self.corrupt = False
        self.corrupt_detail: Optional[str] = None
        #: Offset of the end of the last valid frame (truncation point).
        self.valid_bytes = 0
        self.last_seq = 0

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class WriteAheadLog:
    """An append-only, checksummed log of committed logical operations.

    Pass ``path=None`` for an in-memory log (tests); otherwise records
    are written through a single persistent ``O_APPEND`` handle and
    fsynced at each commit. ``recovery`` selects how mid-log corruption
    is handled when reading: ``"tolerant"`` (default) discards the
    corrupt suffix and counts it, ``"strict"`` raises
    :class:`~repro.errors.WalCorruptionError`.
    """

    def __init__(
        self,
        path: str | None = None,
        metrics=None,
        recovery: str = "tolerant",
    ):
        if recovery not in ("tolerant", "strict"):
            raise ValueError(
                f"recovery must be 'tolerant' or 'strict', got {recovery!r}"
            )
        self.path = path
        self.metrics = metrics
        self.recovery = recovery
        self._memory: Optional[io.BytesIO] = None
        self._handle = None
        self._seq = 0  # last sequence number written or seen
        self._bytes = 0  # current log size in bytes
        self._poisoned: Optional[str] = None
        self.format = "v2"
        #: ScanInfo from the open-time pass over an existing file (None
        #: for in-memory logs) — recovery telemetry captured *before*
        #: any truncate-and-continue repair.
        self.open_scan: Optional[ScanInfo] = None
        # -- crash-injection hooks (see module docstring) ---------------
        self._fsync_calls = 0
        self._fsync_fail_at = self._env_int(FSYNC_FAIL_ENV)
        self._kill_at_bytes = self._env_int(KILL_AT_BYTES_ENV)
        if path is None:
            self._memory = io.BytesIO()
            self._memory.write(MAGIC)
            self._bytes = len(MAGIC)
            return
        self._open_file()

    @staticmethod
    def _env_int(name: str) -> Optional[int]:
        raw = os.environ.get(name, "").strip()
        if not raw:
            return None
        try:
            value = int(raw)
        except ValueError:
            return None
        return value if value > 0 else None

    # -- file lifecycle ----------------------------------------------------

    def _open_file(self) -> None:
        """Open (creating if needed) the log and position the single
        append handle after the last *valid* frame.

        A torn tail left by a crash mid-append is truncated here —
        otherwise new appends would land after garbage and be discarded
        by every future reader. Mid-log corruption is truncated too in
        ``tolerant`` mode (after recording what was lost in
        ``self.open_scan``); in ``strict`` mode the file is left
        untouched for post-mortem and the log poisons itself — the
        first read raises :class:`WalCorruptionError` and no append is
        accepted.
        """
        created = not os.path.exists(self.path)
        if created:
            with open(self.path, "xb") as handle:
                handle.write(MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            fsync_directory(self.path)
        data = self._read_bytes()
        self.format = self._sniff(data)
        if self.format == "v2" and not data:
            # Pre-existing but empty file (the seed engine created the
            # log eagerly): stamp the v2 magic.
            with open(self.path, "r+b") as handle:
                handle.write(MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            data = MAGIC
        if self.format == "v2":
            info = self._scan_v2(data)
        else:
            _, info = self._scan_v1(data)
        self.open_scan = info
        self._seq = info.last_seq
        if info.corrupt and self.recovery == "strict":
            # Preserve the evidence; refuse to write after it.
            self._poisoned = f"corrupt log (strict): {info.corrupt_detail}"
            self._bytes = len(data)
        else:
            if info.valid_bytes < len(data):
                # Torn tail (normal crash) and/or — in tolerant mode —
                # a corrupt suffix: truncate-and-continue.
                with open(self.path, "r+b") as handle:
                    handle.truncate(info.valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
            self._bytes = info.valid_bytes
        self._handle = open(self.path, "ab")
        if (
            self.format == "v1"
            and self._poisoned is None
            and self._bytes > 0
            and not data[: self._bytes].endswith(b"\n")
        ):
            # A v1 log torn exactly between a record and its newline:
            # terminate the line so the next append starts fresh.
            self._handle.write(b"\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._bytes += 1

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent record written/seen."""
        return self._seq

    def ensure_seq(self, seq: int) -> None:
        """Raise the sequence high-water mark to at least ``seq``.

        A checkpoint can truncate the log to an *empty* suffix, leaving
        no frame to carry the numbering forward; a later session would
        restart at 1 and its commits would sit at or below the
        snapshot's ``wal_seq`` — silently filtered by the next
        recovery. Recovery therefore lifts the counter to the
        snapshot's high-water mark so new appends always sort after
        everything the snapshot covers."""
        if seq > self._seq:
            self._seq = seq

    def size_bytes(self) -> int:
        """Current log size in bytes (magic included)."""
        return self._bytes

    @staticmethod
    def _sniff(data: bytes) -> str:
        if not data or data.startswith(MAGIC):
            return "v2"
        return "v1"

    def _read_bytes(self) -> bytes:
        if self._memory is not None:
            return self._memory.getvalue()
        with open(self.path, "rb") as handle:
            return handle.read()

    # -- writing ---------------------------------------------------------------

    def _frame(self, seq: int, payload: bytes) -> bytes:
        seq_bytes = struct.pack(">Q", seq)
        crc = zlib.crc32(seq_bytes + payload) & 0xFFFFFFFF
        return _HEADER.pack(len(payload), crc, seq) + payload

    def log_commit(self, txn_id: int, operations: Sequence[tuple]) -> int:
        """Append a transaction's operations plus its commit marker and
        make them durable; returns the number of bytes written.

        The whole group goes down in one write and one fsync — the
        commit is acknowledged only after the fsync returns, which is
        the engine's entire durability contract."""
        if self._poisoned is not None:
            raise TransactionError(
                f"write-ahead log is poisoned after a failed fsync "
                f"({self._poisoned}); restart and recover"
            )
        if self.format == "v1":
            return self._log_commit_v1(txn_id, operations)
        frames = []
        n_records = 0
        for op in operations:
            self._seq += 1
            payload = json.dumps(self._encode(txn_id, op)).encode("utf-8")
            frames.append(self._frame(self._seq, payload))
            n_records += 1
        self._seq += 1
        frames.append(
            self._frame(
                self._seq,
                json.dumps({"txn": txn_id, "op": "commit"}).encode("utf-8"),
            )
        )
        n_records += 1
        blob = b"".join(frames)
        self._write_durable(blob)
        if self.metrics is not None:
            self.metrics.counter("wal_records_total").inc(n_records)
        return len(blob)

    def _log_commit_v1(self, txn_id: int, operations: Sequence[tuple]) -> int:
        """Append in the legacy JSON-lines format (logs opened from a
        pre-v2 file keep their format until the first checkpoint)."""
        lines = [
            json.dumps(self._encode(txn_id, op)) for op in operations
        ]
        lines.append(json.dumps({"txn": txn_id, "op": "commit"}))
        blob = ("\n".join(lines) + "\n").encode("utf-8")
        self._write_durable(blob)
        if self.metrics is not None:
            self.metrics.counter("wal_records_total").inc(len(lines))
        return len(blob)

    def _write_durable(self, blob: bytes) -> None:
        if self._memory is not None:
            self._memory.write(blob)
            self._bytes += len(blob)
            return
        if self._handle is None or self._handle.closed:
            # close() keeps the session reusable (mirroring
            # Database.close): the append handle respawns on demand.
            self._handle = open(self.path, "ab")
        if (
            self._kill_at_bytes is not None
            and self._bytes + len(blob) > self._kill_at_bytes
        ):
            # Crash injection: die mid-append, leaving a torn frame.
            keep = max(0, self._kill_at_bytes - self._bytes)
            self._handle.write(blob[:keep])
            self._handle.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        self._handle.write(blob)
        self._handle.flush()
        self._fsync_calls += 1
        if (
            self._fsync_fail_at is not None
            and self._fsync_calls >= self._fsync_fail_at
        ):
            self._poisoned = "injected fsync failure"
            raise TransactionError(
                "wal fsync failed (injected): commit not durable"
            )
        try:
            os.fsync(self._handle.fileno())
        except OSError as exc:
            # fsyncgate: after a failed fsync the kernel may have
            # dropped the dirty pages — the durable prefix is unknown,
            # so the only honest move is to refuse further commits.
            self._poisoned = f"{type(exc).__name__}: {exc}"
            raise TransactionError(
                f"wal fsync failed: commit not durable ({exc})"
            ) from exc
        self._bytes += len(blob)

    @staticmethod
    def _encode(txn_id: int, op: tuple) -> dict:
        kind = op[0]
        if kind == "create_table":
            _, name, schema = op
            return {
                "txn": txn_id,
                "op": "create_table",
                "name": name,
                "schema": _schema_to_json(schema),
            }
        if kind == "drop_table":
            _, name = op
            return {"txn": txn_id, "op": "drop_table", "name": name}
        if kind == "insert":
            _, name, rows = op
            return {
                "txn": txn_id,
                "op": "insert",
                "name": name,
                "rows": [list(r) for r in rows],
            }
        if kind == "replace":
            _, name, rows = op
            return {
                "txn": txn_id,
                "op": "replace",
                "name": name,
                "rows": [list(r) for r in rows],
            }
        raise TransactionError(f"unknown WAL operation: {kind!r}")

    # -- reading ---------------------------------------------------------------

    def _scan_v2(self, data: bytes) -> ScanInfo:
        info = ScanInfo()
        pos = len(MAGIC)
        info.valid_bytes = pos
        size = len(data)
        prev_seq: Optional[int] = None
        while pos < size:
            if size - pos < _HEADER.size:
                info.torn_bytes = size - pos
                break
            length, crc, seq = _HEADER.unpack_from(data, pos)
            end = pos + _HEADER.size + length
            if length > MAX_RECORD_BYTES or end > size:
                # Frame runs past EOF: an append died mid-write.
                info.torn_bytes = size - pos
                break
            payload = data[pos + _HEADER.size : end]
            seq_bytes = struct.pack(">Q", seq)
            if zlib.crc32(seq_bytes + payload) & 0xFFFFFFFF != crc:
                info.corrupt = True
                info.corrupt_detail = (
                    f"crc mismatch at offset {pos} (seq {seq})"
                )
                break
            if prev_seq is not None and seq != prev_seq + 1:
                info.corrupt = True
                info.corrupt_detail = (
                    f"sequence break at offset {pos}: "
                    f"{prev_seq} -> {seq}"
                )
                break
            try:
                json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                info.corrupt = True
                info.corrupt_detail = (
                    f"undecodable payload at offset {pos} (seq {seq})"
                )
                break
            prev_seq = seq
            info.last_seq = seq
            info.records_scanned += 1
            pos = end
            info.valid_bytes = pos
        if info.corrupt:
            rest = data[info.valid_bytes:]
            info.bytes_discarded = len(rest)
            # Best-effort count of whole frames lost after the corrupt
            # point (framing may itself be damaged, so this is a floor).
            info.records_discarded = max(1, self._count_frames(rest))
        return info

    @staticmethod
    def _count_frames(data: bytes) -> int:
        """How many structurally complete frames ``data`` holds (no
        CRC/seq validation — used only to size a corrupt suffix)."""
        count, pos, size = 0, 0, len(data)
        while size - pos >= _HEADER.size:
            length, _, _ = _HEADER.unpack_from(data, pos)
            end = pos + _HEADER.size + length
            if length > MAX_RECORD_BYTES or end > size:
                break
            count += 1
            pos = end
        return count

    def _scan_v1(self, data: bytes) -> tuple[list[dict], ScanInfo]:
        info = ScanInfo()
        info.format = "v1"
        records: list[dict] = []
        lines = data.decode("utf-8", errors="replace").splitlines(True)
        consumed = 0
        for i, raw in enumerate(lines):
            line = raw.strip()
            if not line:
                consumed += len(raw.encode("utf-8"))
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                rest = lines[i:]
                tail_bytes = sum(len(r.encode("utf-8")) for r in rest)
                later = [r for r in rest[1:] if r.strip()]
                if not later:
                    # Only the final line is bad: a torn append.
                    info.torn_bytes = tail_bytes
                else:
                    info.corrupt = True
                    info.corrupt_detail = f"undecodable line {i + 1}"
                    info.records_discarded = len(later)
                    info.bytes_discarded = tail_bytes
                break
            info.records_scanned += 1
            consumed += len(raw.encode("utf-8"))
        info.valid_bytes = consumed
        return records, info

    def scan(self) -> tuple[list[dict], ScanInfo]:
        """All valid records plus what the pass found.

        Honors ``self.recovery``: mid-log corruption raises
        :class:`WalCorruptionError` in strict mode; in tolerant mode
        the corrupt suffix is dropped and counted on the returned
        :class:`ScanInfo`. A torn tail is never an error."""
        data = self._read_bytes()
        if self._sniff(data) == "v1":
            records, info = self._scan_v1(data)
        else:
            info = self._scan_v2(data)
            records = []
            pos = len(MAGIC)
            for _ in range(info.records_scanned):
                length, _, _ = _HEADER.unpack_from(data, pos)
                start = pos + _HEADER.size
                records.append(
                    json.loads(data[start : start + length].decode("utf-8"))
                )
                pos = start + length
        if info.corrupt and self.recovery == "strict":
            raise WalCorruptionError(
                f"write-ahead log corrupt: {info.corrupt_detail} "
                f"({info.records_discarded} record(s), "
                f"{info.bytes_discarded} byte(s) unrecoverable)",
                info=info.to_dict(),
            )
        return records, info

    def records(self) -> list[dict]:
        """All well-formed records (tolerant of a torn tail; honors the
        log's ``recovery`` mode for mid-log corruption)."""
        return self.scan()[0]

    def committed_operations(self) -> list[dict]:
        """Operations of transactions that reached their commit marker,
        in commit order."""
        records = self.records()
        committed = {
            r["txn"] for r in records if r.get("op") == "commit"
        }
        return [
            r
            for r in records
            if r.get("op") != "commit" and r.get("txn") in committed
        ]

    # -- replay ---------------------------------------------------------------

    @staticmethod
    def apply_operation(txn, record: dict) -> None:
        """Apply one logical record inside an open transaction."""
        op = record["op"]
        if op == "create_table":
            txn.create_table(
                record["name"], _schema_from_json(record["schema"])
            )
        elif op == "drop_table":
            txn.drop_table(record["name"])
        elif op == "insert":
            txn.insert_rows(record["name"], record["rows"])
        elif op == "replace":
            from ..storage.table import TableData

            data = txn.read(record["name"])
            txn.write(
                record["name"],
                TableData.from_rows(data.schema, record["rows"]),
            )
        else:
            raise TransactionError(f"unknown WAL record: {op!r}")

    def replay_into(self, manager, min_seq: int = 0) -> int:
        """Re-apply committed transactions through a fresh transaction
        manager; returns the number of operations replayed.

        Replay is **atomic per original transaction**: records are
        grouped by their ``txn`` id and the whole group commits once,
        so a crash during recovery can never surface half of a
        transaction. Records with a sequence number at or below
        ``min_seq`` are skipped (already covered by a snapshot — this
        makes replay after an interrupted checkpoint truncation
        idempotent). Transactions without a commit marker are ignored.
        """
        return self.replay_stats(manager, min_seq=min_seq)["operations"]

    def replay_stats(self, manager, min_seq: int = 0) -> dict:
        data = self._read_bytes()
        if self._sniff(data) == "v1":
            records, _ = self.scan()
            seqs = list(range(1, len(records) + 1))
        else:
            # scan() already applied the recovery policy; re-walk the
            # frames for (seq, record) pairs.
            records, info = self.scan()
            seqs = []
            pos = len(MAGIC)
            for _ in range(info.records_scanned):
                length, _, seq = _HEADER.unpack_from(data, pos)
                seqs.append(seq)
                pos += _HEADER.size + length
        pending: dict[int, list[dict]] = {}
        operations = 0
        transactions = 0
        skipped = 0
        for seq, record in zip(seqs, records):
            txn_id = record.get("txn")
            if record.get("op") != "commit":
                pending.setdefault(txn_id, []).append(
                    record if seq > min_seq else None
                )
                continue
            group = pending.pop(txn_id, [])
            group = [r for r in group if r is not None]
            if not group:
                skipped += 1
                continue
            txn = manager.begin()
            saved_wal, manager.wal = manager.wal, None
            try:
                for op_record in group:
                    self.apply_operation(txn, op_record)
                txn.commit()
            except BaseException:
                if txn.status == "active":
                    txn.rollback()
                raise
            finally:
                manager.wal = saved_wal
            operations += len(group)
            transactions += 1
        return {
            "operations": operations,
            "transactions": transactions,
            "commits_skipped": skipped,
            "incomplete_transactions": sum(
                1 for ops in pending.values() if any(ops)
            ),
        }

    # -- checkpoint truncation -------------------------------------------------

    def truncate_through(self, seq: int) -> None:
        """Atomically drop every record with sequence number <= ``seq``
        (they are covered by a durable snapshot). The surviving suffix
        is rewritten into a fresh v2 file that replaces the log in one
        rename; the append handle is reopened on the new file. Also
        upgrades a legacy v1 log to v2 framing."""
        if self._memory is not None:
            data = self._memory.getvalue()
            records, info = self.scan()
            out = io.BytesIO()
            out.write(MAGIC)
            if self._sniff(data) == "v2":
                pos = len(MAGIC)
                for _ in range(info.records_scanned):
                    length, _, rec_seq = _HEADER.unpack_from(data, pos)
                    end = pos + _HEADER.size + length
                    if rec_seq > seq:
                        out.write(data[pos:end])
                    pos = end
            self._memory = out
            self._bytes = len(out.getvalue())
            return
        data = self._read_bytes()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            if self._sniff(data) == "v2":
                info = self._scan_v2(data)
                pos = len(MAGIC)
                for _ in range(info.records_scanned):
                    length, _, rec_seq = _HEADER.unpack_from(data, pos)
                    end = pos + _HEADER.size + length
                    if rec_seq > seq:
                        handle.write(data[pos:end])
                    pos = end
            # v1 logs: everything up to the checkpoint is covered by
            # the snapshot; the rewritten file starts empty (v2).
            handle.flush()
            os.fsync(handle.fileno())
        size = os.path.getsize(tmp)
        self.close()
        os.replace(tmp, self.path)
        fsync_directory(self.path)
        self.format = "v2"
        self._bytes = size
        self._handle = open(self.path, "ab")
