"""Write-ahead log.

Committed transactions append one JSON record per logical operation
(create/drop table, insert) followed by a commit marker. Recovery replays
complete transactions in order; torn trailing records (from a crash
mid-append) are discarded, as is any transaction without a commit marker.

The engine logs *logical* operations rather than physical page images
because the storage layer is pure main-memory copy-on-write: replaying
logical ops against an empty catalog deterministically reconstructs state.
DELETE and UPDATE are logged as the full replacement row set of the table
(simple and correct for a main-memory engine whose versions are already
whole-table snapshots).
"""

from __future__ import annotations

import io
import json
import os
from typing import Sequence

from ..errors import TransactionError
from ..types import SQLType, TypeKind, type_from_name
from ..storage.schema import ColumnSchema, TableSchema


def _schema_to_json(schema: TableSchema) -> list[dict]:
    out = []
    for col in schema:
        out.append(
            {
                "name": col.name,
                "type": col.sql_type.kind.value,
                "width": col.sql_type.width,
                "not_null": col.not_null,
            }
        )
    return out


def _schema_from_json(payload: list[dict]) -> TableSchema:
    cols = []
    for item in payload:
        sql_type = SQLType(TypeKind(item["type"]), item.get("width"))
        cols.append(
            ColumnSchema(item["name"], sql_type, item.get("not_null", False))
        )
    return TableSchema(tuple(cols))


class WriteAheadLog:
    """An append-only JSON-lines log of committed logical operations.

    Pass ``path=None`` for an in-memory log (useful in tests); otherwise
    records are flushed and fsynced at each commit.
    """

    def __init__(self, path: str | None = None):
        self.path = path
        self._memory = io.StringIO() if path is None else None
        if path is not None and not os.path.exists(path):
            with open(path, "w", encoding="utf-8"):
                pass

    # -- writing ---------------------------------------------------------------

    def log_commit(self, txn_id: int, operations: Sequence[tuple]) -> int:
        """Append a transaction's operations plus its commit marker;
        returns the number of bytes written (UTF-8 encoded)."""
        lines = []
        for op in operations:
            lines.append(json.dumps(self._encode(txn_id, op)))
        lines.append(json.dumps({"txn": txn_id, "op": "commit"}))
        payload = "\n".join(lines) + "\n"
        written = len(payload.encode("utf-8"))
        if self._memory is not None:
            self._memory.write(payload)
            return written
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        return written

    @staticmethod
    def _encode(txn_id: int, op: tuple) -> dict:
        kind = op[0]
        if kind == "create_table":
            _, name, schema = op
            return {
                "txn": txn_id,
                "op": "create_table",
                "name": name,
                "schema": _schema_to_json(schema),
            }
        if kind == "drop_table":
            _, name = op
            return {"txn": txn_id, "op": "drop_table", "name": name}
        if kind == "insert":
            _, name, rows = op
            return {
                "txn": txn_id,
                "op": "insert",
                "name": name,
                "rows": [list(r) for r in rows],
            }
        if kind == "replace":
            _, name, rows = op
            return {
                "txn": txn_id,
                "op": "replace",
                "name": name,
                "rows": [list(r) for r in rows],
            }
        raise TransactionError(f"unknown WAL operation: {kind!r}")

    # -- reading ---------------------------------------------------------------

    def records(self) -> list[dict]:
        """All well-formed records, discarding a torn trailing line."""
        if self._memory is not None:
            text = self._memory.getvalue()
        else:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn write: ignore this and everything after
        return records

    def committed_operations(self) -> list[dict]:
        """Operations of transactions that reached their commit marker,
        in commit order."""
        records = self.records()
        committed = {
            r["txn"] for r in records if r.get("op") == "commit"
        }
        return [
            r
            for r in records
            if r.get("op") != "commit" and r.get("txn") in committed
        ]

    def replay_into(self, manager) -> int:
        """Re-apply committed operations through a fresh transaction
        manager; returns the number of operations replayed."""
        ops = self.committed_operations()
        count = 0
        for record in ops:
            txn = manager.begin()
            op = record["op"]
            if op == "create_table":
                txn.create_table(
                    record["name"], _schema_from_json(record["schema"])
                )
            elif op == "drop_table":
                txn.drop_table(record["name"])
            elif op == "insert":
                txn.insert_rows(record["name"], record["rows"])
            elif op == "replace":
                data = txn.read(record["name"])
                from ..storage.table import TableData

                txn.write(
                    record["name"],
                    TableData.from_rows(data.schema, record["rows"]),
                )
            else:
                raise TransactionError(f"unknown WAL record: {op!r}")
            # Recovery replays through the normal commit path but must not
            # re-log what is already durable.
            saved_wal, manager.wal = manager.wal, None
            try:
                txn.commit()
            finally:
                manager.wal = saved_wal
            count += 1
        return count
