"""Transactions: snapshot isolation over versioned tables, plus a
write-ahead log for durability and crash recovery."""

from .manager import Transaction, TransactionManager
from .wal import WriteAheadLog

__all__ = ["Transaction", "TransactionManager", "WriteAheadLog"]
