"""Checkpoint snapshots: atomic, checksummed catalog images beside the WAL.

A checkpoint bounds both the log and recovery time: the committed
catalog is serialized into a sidecar file (``<wal>.ckpt``) with an
atomic write-then-rename, then every WAL record the snapshot covers is
truncated away. Recovery becomes "load the snapshot, replay only the
WAL suffix" — flat in total history, linear only in the suffix
(docs/durability.md, ``repro.bench.durability``).

On-disk format::

    file    := magic header payload
    magic   := b"RPSNAPv1\\n"            (9 bytes)
    header  := crc32:u32be length:u64be  (12 bytes)
    payload := one UTF-8 JSON document (crc32 covers it)

The payload carries the WAL sequence number the snapshot is consistent
with (``wal_seq``): recovery skips replaying any WAL record at or
below it, which makes the checkpoint protocol crash-safe — if the
process dies *between* the snapshot rename and the log truncation, the
stale WAL prefix is simply filtered out instead of applied twice.

A torn ``.ckpt.tmp`` (crash mid-write, before the rename) is ignored
and cleaned up; the previous snapshot — or no snapshot — is still the
newest valid one. A damaged ``.ckpt`` itself can only mean bit rot or
an external overwrite (the rename is atomic), and since the WAL behind
it was truncated, no mode can silently skip it: loading raises
:class:`~repro.errors.WalCorruptionError` in strict *and* tolerant
recovery.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Optional

from ..errors import WalCorruptionError
from .wal import _schema_from_json, _schema_to_json, fsync_directory

#: Snapshot file magic (9 bytes).
SNAP_MAGIC = b"RPSNAPv1\n"

#: Snapshot header: crc32 (u32) then payload length (u64).
_SNAP_HEADER = struct.Struct(">IQ")


def snapshot_path(wal_path: str) -> str:
    """The sidecar snapshot path for a WAL file."""
    return wal_path + ".ckpt"


def capture_catalog(catalog, ts: int) -> dict:
    """Serialize every table visible at commit timestamp ``ts``."""
    tables = {}
    for name in catalog.table_names(ts):
        data = catalog.data(name, ts)
        tables[name] = {
            "schema": _schema_to_json(data.schema),
            "rows": [list(r) for r in data.rows()],
        }
    return tables


def write_snapshot(path: str, payload: dict) -> int:
    """Atomically persist ``payload`` at ``path``; returns bytes written.

    write tmp → fsync tmp → rename over ``path`` → fsync directory, so
    a crash at any point leaves either the old snapshot or the new one,
    never a torn file under the final name."""
    body = json.dumps(payload).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    blob = SNAP_MAGIC + _SNAP_HEADER.pack(crc, len(body)) + body
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(path)
    return len(blob)


def load_snapshot(path: str) -> Optional[dict]:
    """Read and validate a snapshot; ``None`` when there is none.

    Any damage — bad magic, short header, truncated payload, CRC
    mismatch, undecodable JSON — raises
    :class:`~repro.errors.WalCorruptionError`: the WAL records the
    snapshot replaced are gone, so there is nothing to fall back to."""
    # A leftover .tmp is a checkpoint that died before its rename; the
    # file under the final name (if any) is still authoritative.
    try:
        os.unlink(path + ".tmp")
    except OSError:
        pass
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(SNAP_MAGIC):
        raise WalCorruptionError(
            f"snapshot {path}: bad magic "
            f"(got {data[:len(SNAP_MAGIC)]!r})"
        )
    if len(data) < len(SNAP_MAGIC) + _SNAP_HEADER.size:
        raise WalCorruptionError(f"snapshot {path}: truncated header")
    crc, length = _SNAP_HEADER.unpack_from(data, len(SNAP_MAGIC))
    body = data[len(SNAP_MAGIC) + _SNAP_HEADER.size :]
    if len(body) != length:
        raise WalCorruptionError(
            f"snapshot {path}: payload is {len(body)} byte(s), "
            f"header says {length}"
        )
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise WalCorruptionError(f"snapshot {path}: crc mismatch")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalCorruptionError(
            f"snapshot {path}: undecodable payload ({exc})"
        ) from exc
    return payload


def restore_into(manager, payload: dict) -> int:
    """Recreate the snapshot's tables through ``manager`` in one
    transaction (so a crash mid-restore leaves nothing behind); returns
    the number of tables restored. The WAL is detached for the duration
    — the snapshot's contents are already durable."""
    tables = payload.get("tables", {})
    txn = manager.begin()
    saved_wal, manager.wal = manager.wal, None
    try:
        for name, entry in tables.items():
            txn.create_table(name, _schema_from_json(entry["schema"]))
            if entry["rows"]:
                txn.insert_rows(name, entry["rows"])
        txn.commit()
    except BaseException:
        if txn.status == "active":
            txn.rollback()
        raise
    finally:
        manager.wal = saved_wal
    return len(tables)
