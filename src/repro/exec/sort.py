"""Sorting and LIMIT/OFFSET."""

from __future__ import annotations

import os
from typing import Iterator, Optional

import numpy as np

from ..expr.compiler import EvalContext
from ..plan.logical import LogicalLimit, LogicalSort
from ..storage.column import Column, ColumnBatch
from ..storage.encoding import DictionaryColumn
from ..types import TypeKind
from .physical import ExecutionContext, PhysicalOperator

#: Session switch for the Sort+Limit -> TopNSort fusion.
TOPN_ENV = "REPRO_TOPN"


def resolve_topn(flag: Optional[bool] = None) -> bool:
    """Resolve the top-N fusion switch: explicit flag, else env, else on."""
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(TOPN_ENV, "").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return False
    return True


class SortOp(PhysicalOperator):
    """Materialises and sorts by the node's keys.

    Implemented as repeated stable argsorts from the least significant
    key to the most significant one. NULL ordering follows PostgreSQL:
    NULLs sort as larger than every value (last for ASC, first for DESC)
    unless NULLS FIRST/LAST overrides.
    """

    def __init__(
        self,
        node: LogicalSort,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(list(node.output))
        self._node = node
        self._child = child
        self._ctx = ctx
        self._key_fns = [ctx.compiler.compile(k.expr) for k in node.keys]

    def describe(self) -> str:
        return f"Sort(keys={len(self._node.keys)})"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        governor = self._ctx.governor
        batch = self._child.execute_materialized(eval_ctx)
        reserved = governor.reserve(batch.nbytes, "sort")
        try:
            self._ctx.checkpoint("sort")
            if len(batch) <= 1:
                yield batch
                return
            order = np.arange(len(batch), dtype=np.int64)
            for key, fn in zip(
                reversed(self._node.keys), reversed(self._key_fns)
            ):
                col = fn(batch, eval_ctx)
                order = order[_stable_key_sort(col.take(order), key)]
            yield batch.take(order)
        finally:
            governor.release(reserved)


def _stable_key_sort(col: Column, key) -> np.ndarray:
    """Stable permutation ordering one key column."""
    n = len(col)
    validity = col.validity()
    nulls_last = key.nulls_last
    if nulls_last is None:
        nulls_last = not key.descending  # NULLs are "largest"

    if col.sql_type.kind is TypeKind.VARCHAR:
        # Python-object sort; sorted() is stable, including reverse=True.
        non_null = [i for i in range(n) if validity[i]]
        null_rows = [i for i in range(n) if not validity[i]]
        non_null.sort(key=lambda i: col.values[i], reverse=key.descending)
        decorated = (
            non_null + null_rows if nulls_last else null_rows + non_null
        )
        return np.asarray(decorated, dtype=np.int64)

    values = col.values.astype(np.float64, copy=True)
    if key.descending:
        values = -values
    # Place NULLs at the requested end via +/- infinity sentinels.
    values[~validity] = np.inf if nulls_last else -np.inf
    return np.argsort(values, kind="stable")


def _encode_primary_key(col: Column, key) -> np.ndarray:
    """Encode one sort key as an ascending float64 rank vector.

    Smaller rank == earlier in the requested order; exactly mirrors the
    sentinel scheme of :func:`_stable_key_sort` (NULLs as +/-inf, NaN
    sorting after +inf in both directions, descending via negation) so
    a partition on the ranks selects the same prefix a full stable sort
    would.
    """
    n = len(col)
    validity = col.validity()
    nulls_last = key.nulls_last
    if nulls_last is None:
        nulls_last = not key.descending

    if col.sql_type.kind is TypeKind.VARCHAR:
        enc = np.zeros(n, dtype=np.float64)
        if isinstance(col, DictionaryColumn):
            # Sorted dictionary: codes are already order-faithful ranks.
            enc[:] = col.codes.astype(np.float64)
        else:
            live = np.flatnonzero(validity)
            if len(live):
                # np.unique sorts with the same __lt__ Python's sorted()
                # uses, so the dense ranks reproduce lexicographic order.
                _, inverse = np.unique(
                    col.values[live], return_inverse=True
                )
                enc[live] = inverse.astype(np.float64)
        if key.descending:
            enc = -enc
    else:
        enc = col.values.astype(np.float64, copy=True)
        if key.descending:
            enc = -enc
    enc[~validity] = np.inf if nulls_last else -np.inf
    return enc


class TopNSortOp(PhysicalOperator):
    """Fused ORDER BY + LIMIT: sort only the rows that can make the cut.

    ``np.argpartition`` on the most-significant key's rank selects the
    k = offset+limit smallest rows plus *every* row tied with the k-th
    boundary value (ties must survive so secondary keys and stability
    can break them exactly as a full sort would); the candidate set —
    kept in ascending original-row order to preserve stability — then
    runs the same repeated-stable-argsort loop as :class:`SortOp` and is
    sliced to ``[offset : offset+limit]``. Bit-identical to
    Sort -> Limit by construction; degrades to a full sort when
    k >= n or when the boundary value ties the whole input.
    """

    def __init__(
        self,
        sort_node: LogicalSort,
        limit_node: LogicalLimit,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(list(sort_node.output))
        self._node = sort_node
        self._child = child
        self._ctx = ctx
        self._key_fns = [
            ctx.compiler.compile(k.expr) for k in sort_node.keys
        ]
        self._limit = int(limit_node.limit)
        self._offset = limit_node.offset or 0

    def describe(self) -> str:
        return (
            f"TopNSort(keys={len(self._node.keys)}, "
            f"limit={self._limit}, offset={self._offset})"
        )

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        k = self._limit + self._offset
        if self._limit <= 0 or k <= 0:
            yield self.empty_batch()
            return
        governor = self._ctx.governor
        batch = self._child.execute_materialized(eval_ctx)
        reserved = governor.reserve(batch.nbytes, "sort")
        try:
            self._ctx.checkpoint("sort")
            n = len(batch)
            if n == 0:
                yield batch
                return
            if k < n:
                primary = self._key_fns[0](batch, eval_ctx)
                enc = _encode_primary_key(primary, self._node.keys[0])
                boundary = enc[np.argpartition(enc, k - 1)[k - 1]]
                if np.isnan(boundary):
                    # The k-th row is NaN: every non-NaN row precedes it
                    # and all NaNs tie — nothing can be discarded.
                    candidates = np.arange(n, dtype=np.int64)
                else:
                    # Strict winners plus ALL boundary ties (NaNs compare
                    # False and drop out: they sort after +inf).
                    candidates = np.flatnonzero(enc <= boundary).astype(
                        np.int64
                    )
                sub = batch.take(candidates)
            else:
                sub = batch
            order = np.arange(len(sub), dtype=np.int64)
            if len(sub) > 1:
                for key, fn in zip(
                    reversed(self._node.keys), reversed(self._key_fns)
                ):
                    col = fn(sub, eval_ctx)
                    order = order[_stable_key_sort(col.take(order), key)]
            picked = order[self._offset:k]
            if len(picked) == 0:
                yield self.empty_batch()
            else:
                yield sub.take(picked)
        finally:
            governor.release(reserved)


class LimitOp(PhysicalOperator):
    """Streams through at most ``limit`` rows after skipping ``offset``."""

    def __init__(
        self,
        node: LogicalLimit,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(list(node.output))
        self._child = child
        self._limit = node.limit
        self._offset = node.offset or 0

    def describe(self) -> str:
        return f"Limit({self._limit}, offset={self._offset})"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        to_skip = self._offset
        remaining = self._limit
        produced = False
        if remaining is not None and remaining <= 0:
            yield self.empty_batch()
            return
        source = self._child.execute(eval_ctx)
        try:
            for batch in source:
                if to_skip:
                    if len(batch) <= to_skip:
                        to_skip -= len(batch)
                        continue
                    batch = batch.slice(to_skip, len(batch))
                    to_skip = 0
                if remaining is not None:
                    if len(batch) > remaining:
                        batch = batch.slice(0, remaining)
                    remaining -= len(batch)
                produced = True
                yield batch
                # Early exit: once offset+limit rows are out, stop
                # pulling child batches so pushed-down limits actually
                # truncate upstream work.
                if remaining is not None and remaining <= 0:
                    break
        finally:
            close = getattr(source, "close", None)
            if close is not None:
                close()
        if not produced:
            yield self.empty_batch()
