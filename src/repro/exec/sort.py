"""Sorting and LIMIT/OFFSET."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..expr.compiler import EvalContext
from ..plan.logical import LogicalLimit, LogicalSort
from ..storage.column import Column, ColumnBatch
from ..types import TypeKind
from .physical import ExecutionContext, PhysicalOperator


class SortOp(PhysicalOperator):
    """Materialises and sorts by the node's keys.

    Implemented as repeated stable argsorts from the least significant
    key to the most significant one. NULL ordering follows PostgreSQL:
    NULLs sort as larger than every value (last for ASC, first for DESC)
    unless NULLS FIRST/LAST overrides.
    """

    def __init__(
        self,
        node: LogicalSort,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(list(node.output))
        self._node = node
        self._child = child
        self._ctx = ctx
        self._key_fns = [ctx.compiler.compile(k.expr) for k in node.keys]

    def describe(self) -> str:
        return f"Sort(keys={len(self._node.keys)})"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        governor = self._ctx.governor
        batch = self._child.execute_materialized(eval_ctx)
        reserved = governor.reserve(batch.nbytes, "sort")
        try:
            self._ctx.checkpoint("sort")
            if len(batch) <= 1:
                yield batch
                return
            order = np.arange(len(batch), dtype=np.int64)
            for key, fn in zip(
                reversed(self._node.keys), reversed(self._key_fns)
            ):
                col = fn(batch, eval_ctx)
                order = order[_stable_key_sort(col.take(order), key)]
            yield batch.take(order)
        finally:
            governor.release(reserved)


def _stable_key_sort(col: Column, key) -> np.ndarray:
    """Stable permutation ordering one key column."""
    n = len(col)
    validity = col.validity()
    nulls_last = key.nulls_last
    if nulls_last is None:
        nulls_last = not key.descending  # NULLs are "largest"

    if col.sql_type.kind is TypeKind.VARCHAR:
        # Python-object sort; sorted() is stable, including reverse=True.
        non_null = [i for i in range(n) if validity[i]]
        null_rows = [i for i in range(n) if not validity[i]]
        non_null.sort(key=lambda i: col.values[i], reverse=key.descending)
        decorated = (
            non_null + null_rows if nulls_last else null_rows + non_null
        )
        return np.asarray(decorated, dtype=np.int64)

    values = col.values.astype(np.float64, copy=True)
    if key.descending:
        values = -values
    # Place NULLs at the requested end via +/- infinity sentinels.
    values[~validity] = np.inf if nulls_last else -np.inf
    return np.argsort(values, kind="stable")


class LimitOp(PhysicalOperator):
    """Streams through at most ``limit`` rows after skipping ``offset``."""

    def __init__(
        self,
        node: LogicalLimit,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(list(node.output))
        self._child = child
        self._limit = node.limit
        self._offset = node.offset or 0

    def describe(self) -> str:
        return f"Limit({self._limit}, offset={self._offset})"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        to_skip = self._offset
        remaining = self._limit
        produced = False
        for batch in self._child.execute(eval_ctx):
            if to_skip:
                if len(batch) <= to_skip:
                    to_skip -= len(batch)
                    continue
                batch = batch.slice(to_skip, len(batch))
                to_skip = 0
            if remaining is not None:
                if remaining <= 0:
                    break
                if len(batch) > remaining:
                    batch = batch.slice(0, remaining)
                remaining -= len(batch)
            produced = True
            yield batch
        if not produced:
            yield self.empty_batch()
