"""Morsel-driven parallel execution (HyPer-style, paper section 3).

The engine's parallel substrate is a shared :class:`WorkerPool` of
threads (numpy kernels release the GIL, so memory-bound scans,
aggregations, and the analytics operators genuinely overlap) plus a
morsel dispatcher: base-table scans are split into fixed-size morsels
and whole Scan→Filter→Project pipelines run one morsel per task.

Determinism contract — parallel execution is **schedule-independent**:

* morsel boundaries depend only on the table size and ``morsel_rows``,
  never on the worker count;
* every dispatch is *ordered* (:meth:`WorkerPool.map_ordered` returns
  results in submission order), and all merges fold partial states in
  morsel-index order, so floating-point reductions happen in one fixed
  order regardless of how many workers ran them;
* consequently ``workers=1`` and ``workers=N`` produce bit-identical
  results (the serial-equivalence battery in
  ``tests/test_parallel_equivalence.py`` enforces this).

The planner consults cardinality (the scanned table's row count at
build time) and only goes parallel above
:data:`~repro.exec.physical.DEFAULT_PARALLEL_THRESHOLD` rows; small
inputs keep the serial fast path.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Optional, Sequence, TypeVar

import numpy as np

from ..expr import bound as b
from ..expr.aggregates import _segmented_reduce, group_counts, group_sums
from ..plan import logical as lp
from ..storage.column import Column, ColumnBatch
from ..types import BIGINT, BOOLEAN, DOUBLE, TypeKind
from .fused import build_pipeline_program, pipeline_pruner, run_program
from .physical import ExecutionContext, PhysicalOperator

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable read when ``Database(workers=None)``.
WORKERS_ENV = "REPRO_WORKERS"

#: Rows per partial-aggregation chunk. Fixed (worker-independent) so the
#: merge order — and therefore every floating-point sum — is identical
#: for any worker count.
PARTIAL_CHUNK_ROWS = 65_536


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: an explicit argument wins, then the
    ``REPRO_WORKERS`` environment variable, then 1 (serial)."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError as exc:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from exc
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def morsel_ranges(
    n_rows: int, morsel_rows: int
) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into ``[start, stop)`` morsels.

    Boundaries depend only on the inputs (never the worker count); the
    final morsel absorbs the non-divisible remainder. Empty input
    yields no ranges."""
    morsel_rows = max(int(morsel_rows), 1)
    return [
        (start, min(start + morsel_rows, n_rows))
        for start in range(0, n_rows, morsel_rows)
    ]


class WorkerPool:
    """A shared thread pool dispatching morsels to workers.

    Threads are created lazily on the first parallel dispatch, so a
    serial session (``workers=1``) never spawns any — every task runs
    inline on the caller. Each worker thread gets a stable id used to
    label the per-worker morsel counters
    (``parallel_morsels_total{worker="<id>"}``); the inline path counts
    as worker ``"0"``.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        metrics=None,
        chaos=None,
        tracer=None,
    ):
        self.workers = resolve_workers(workers)
        self.metrics = metrics
        #: Optional :class:`repro.testing.chaos.ChaosInjector` consulted
        #: before every task (worker-crash injection).
        self.chaos = chaos
        #: Optional :class:`repro.obs.trace.Tracer`. When set, every
        #: parallel dispatch captures the coordinator's current span and
        #: attaches one child span per task from the worker that ran it,
        #: so worker activity stitches under the owning statement.
        self.tracer = tracer
        #: Optional callback invoked with the exception whenever a task
        #: dies with a ``retry_serial`` error and is retried inline —
        #: the survived crash would otherwise be invisible to the
        #: session (the statement succeeds). The flight recorder hooks
        #: this to dump a diagnostic bundle.
        self.on_worker_crash: Optional[Callable[[Exception], None]] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._atexit_registered = False

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1

    @property
    def worker_id(self) -> int:
        """The calling thread's worker id (0 on non-pool threads)."""
        return getattr(self._local, "worker_id", 0)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-worker",
                    initializer=self._init_worker,
                )
                if not self._atexit_registered:
                    # Joining live workers at interpreter exit would
                    # otherwise hang teardown if a session forgot to
                    # close(); shutdown is idempotent, so a normal
                    # close() beforehand makes this a no-op.
                    atexit.register(self.shutdown)
                    self._atexit_registered = True
            return self._executor

    def _init_worker(self) -> None:
        self._local.worker_id = next(self._ids)

    def _run_one(self, fn: Callable[[T], R], item: T) -> R:
        if self.chaos is not None:
            self.chaos.on_worker_task(self.worker_id)
        result = fn(item)
        if self.metrics is not None:
            self.metrics.counter(
                "parallel_morsels_total", worker=str(self.worker_id)
            ).inc()
        return result

    def map_ordered(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        label: str = "task",
    ) -> list[R]:
        """``[fn(item) for item in items]`` with results in submission
        order — the ordered dispatch every deterministic merge relies
        on. Runs inline when the pool is serial or there is at most one
        item.

        Trace propagation: with a tracer attached, the coordinator's
        innermost open span is captured *before* dispatch and each task
        runs inside an attached child span named ``label`` (with its
        submission ``index``), opened on whichever worker thread ran it.
        Worker spans therefore appear exactly once under the owning
        statement's tree regardless of scheduling; the inline/serial
        path nests naturally and adds no extra spans.

        Fault tolerance: a task that dies with a *worker-infrastructure*
        error (``retry_serial`` on the exception, e.g.
        :class:`repro.errors.WorkerCrashError`) is retried once, inline
        on the coordinator thread, before the query fails — so a crashed
        worker never takes the statement down with it. The crashed
        attempt keeps its (errored) span and ``on_worker_crash`` fires,
        because the statement will otherwise succeed and hide the crash.
        Query errors (including governor errors) propagate unchanged.
        """
        items = list(items)
        if not self.is_parallel or len(items) <= 1:
            return [self._run_one(fn, item) for item in items]
        executor = self._ensure_executor()
        tracer = self.tracer
        parent = tracer.current() if tracer is not None else None

        def run_task(item: T, index: int) -> R:
            if parent is None:
                return self._run_one(fn, item)
            with tracer.attached_span(parent, label, index=index):
                return self._run_one(fn, item)

        futures = [
            executor.submit(run_task, item, i)
            for i, item in enumerate(items)
        ]
        results: list[R] = []
        for future, item in zip(futures, items):
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 — typed retry gate
                if not getattr(exc, "retry_serial", False):
                    raise
                if self.metrics is not None:
                    self.metrics.counter(
                        "parallel_morsel_retries_total"
                    ).inc()
                if self.on_worker_crash is not None:
                    try:
                        self.on_worker_crash(exc)
                    except Exception:  # noqa: BLE001 — diagnostics only
                        pass
                results.append(self._run_one(fn, item))
        return results

    def shutdown(self) -> None:
        """Join the worker threads (idempotent; the pool can be reused
        afterwards — a new executor is created on demand). Also drops
        the pool's atexit hook so processes that open and close many
        sessions (server fleets, bench sweeps) never accumulate stale
        interpreter-exit callbacks."""
        with self._lock:
            executor, self._executor = self._executor, None
            if self._atexit_registered:
                atexit.unregister(self.shutdown)
                self._atexit_registered = False
        if executor is not None:
            executor.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Parallel Scan→Filter→Project pipelines
# ---------------------------------------------------------------------------


def _parallel_safe(expr: b.BoundExpr) -> bool:
    """Whether an expression may be evaluated concurrently: subqueries
    (shared physical-plan cache, working tables) and user UDFs
    (arbitrary Python, unknown thread safety) pin a pipeline to the
    serial path."""
    stack: list[b.BoundExpr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (b.BoundSubquery, b.BoundUDF)):
            return False
        stack.extend(node.children())
    return True


def try_build_parallel_pipeline(
    plan: lp.LogicalPlan, ctx: ExecutionContext
) -> Optional["ParallelPipelineOp"]:
    """The planner's parallel-vs-serial decision for one pipeline.

    Returns a :class:`ParallelPipelineOp` when the plan is a
    Filter/Project chain rooted at a base-table scan, the session has a
    parallel pool, every expression is safe to evaluate concurrently,
    and the scanned table's cardinality clears
    ``ctx.parallel_threshold``; ``None`` keeps the serial operators.
    """
    pool = ctx.pool
    if pool is None or not pool.is_parallel:
        return None
    stages: list[lp.LogicalPlan] = []
    node = plan
    while isinstance(node, (lp.LogicalFilter, lp.LogicalProject)):
        stages.append(node)
        node = node.child
    if not stages or not isinstance(node, lp.LogicalScan):
        return None
    for stage in stages:
        exprs = (
            [stage.predicate]
            if isinstance(stage, lp.LogicalFilter)
            else list(stage.exprs)
        )
        if not all(_parallel_safe(e) for e in exprs):
            return None
    try:
        estimate = float(ctx.read_table(node.table_name).row_count)
    except Exception:  # noqa: BLE001 — missing table: let ScanOp raise
        return None
    if ctx.estimator is not None and ctx.estimator.has_feedback:
        # Feedback-informed threshold: when history has observed this
        # scan producing far fewer rows than the table holds (zone maps
        # pruning most morsels), the dispatch overhead isn't worth it —
        # trust the observed cardinality over the raw table size.
        try:
            estimate = min(estimate, ctx.estimator.estimate(node))
        except Exception:  # noqa: BLE001 — estimates are best-effort
            pass
    if estimate < ctx.parallel_threshold:
        return None
    return ParallelPipelineOp(plan, stages, node, ctx)


class ParallelPipelineOp(PhysicalOperator):
    """One fused Scan→Filter→Project pipeline executed morsel-wise on
    the worker pool.

    The base table is split into ``ctx.morsel_rows``-sized morsels;
    each task slices its morsel (column pruning applied at the scan,
    like :class:`~repro.exec.scan.ScanOp`), then applies the compiled
    filter masks and projection expressions bottom-up. Output batches
    are yielded in morsel order, so the result is identical to the
    serial operator chain for any worker count.
    """

    def __init__(
        self,
        plan: lp.LogicalPlan,
        stages: list[lp.LogicalPlan],
        scan: lp.LogicalScan,
        ctx: ExecutionContext,
    ):
        super().__init__(list(plan.output))
        self._scan = scan
        self._ctx = ctx
        # Bottom-up stage program shared with the serial fused pipeline
        # (see repro.exec.fused) so both paths stay bit-identical.
        self._program = build_pipeline_program(stages, ctx)
        self._pruner = (
            pipeline_pruner(scan, stages) if ctx.hot_path else None
        )

    def describe(self) -> str:
        workers = self._ctx.pool.workers if self._ctx.pool else 1
        return (
            f"ParallelPipeline({self._scan.table_name}, "
            f"workers={workers}, stages={len(self._program)})"
        )

    def _run_morsel(
        self,
        columns: dict[str, Column],
        rng: tuple[int, int],
        eval_ctx,
    ) -> ColumnBatch:
        start, stop = rng
        batch = ColumnBatch(
            {
                slot: col.slice(start, stop)
                for slot, col in columns.items()
            }
        )
        return run_program(self._program, batch, eval_ctx)

    def execute(self, eval_ctx) -> Iterator[ColumnBatch]:
        ctx = self._ctx
        data = ctx.read_table(self._scan.table_name)
        ctx.stats.rows_scanned += data.row_count
        if data.row_count == 0:
            yield self.empty_batch()
            return
        columns = {
            col.slot: data.column_by_name(col.name)
            for col in self._scan.output
        }
        ranges = morsel_ranges(data.row_count, ctx.morsel_rows)
        if self._pruner is not None:
            ranges, pruned = self._pruner.keep_ranges(
                data, ranges, eval_ctx.params
            )
            ctx.stats.morsels_pruned += pruned
        if not ranges:
            yield self.empty_batch()
            return
        pool = ctx.pool
        ctx.stats.parallel_pipelines += 1
        ctx.stats.morsels_dispatched += len(ranges)

        def task(rng: tuple[int, int]) -> ColumnBatch:
            # Runs on a worker thread: the governor's ledger and token
            # are thread-safe, so each morsel is its own checkpoint and
            # cancellation latency stays bounded by one morsel.
            ctx.checkpoint("parallel_morsel")
            return self._run_morsel(columns, rng, eval_ctx)

        ctx.checkpoint("parallel_dispatch")

        if ctx.tracer is not None:
            with ctx.tracer.span(
                "parallel_pipeline",
                table=self._scan.table_name,
                workers=pool.workers,
                morsels=len(ranges),
            ):
                batches = pool.map_ordered(task, ranges, label="morsel")
        else:
            batches = pool.map_ordered(task, ranges, label="morsel")
        yield from batches


# ---------------------------------------------------------------------------
# Partial aggregation with ordered merge
# ---------------------------------------------------------------------------

#: Aggregates with a decomposable (partial state + ordered merge) form.
MERGEABLE_AGGREGATES = frozenset(
    {
        "count", "count_star", "sum", "avg", "mean", "min", "max",
        "bool_and", "bool_or", "every",
    }
)


def partial_grouped_aggregate(
    func_name: str,
    col: Optional[Column],
    codes: np.ndarray,
    n_groups: int,
    pool: WorkerPool,
    chunk_rows: int = PARTIAL_CHUNK_ROWS,
) -> Optional[Column]:
    """Thread-local partial aggregation plus a global ordered merge.

    The input is split into fixed ``chunk_rows`` chunks (independent of
    the worker count); each chunk computes its partial state on the
    pool, and partials are folded **in chunk order**, so results are
    identical for any worker count. Returns ``None`` when the aggregate
    has no decomposable form (caller falls back to the serial kernel)
    or when a single chunk suffices (the serial kernel is already that
    chunk's partial).
    """
    name = func_name.lower()
    if name not in MERGEABLE_AGGREGATES:
        return None
    if col is not None and col.sql_type.kind is TypeKind.VARCHAR:
        return None  # object-dtype extremes keep the per-row path
    n = len(codes)
    ranges = morsel_ranges(n, chunk_rows)
    if len(ranges) <= 1:
        return None

    if name in ("count", "count_star"):
        def partial(rng):
            s, e = rng
            part = None if col is None else col.slice(s, e)
            return group_counts(part, codes[s:e], n_groups)

        counts = pool.map_ordered(partial, ranges, label="partial_aggregate")
        total = np.zeros(n_groups, dtype=np.int64)
        for part in counts:
            total += part
        return Column(total, BIGINT)

    if name in ("sum", "avg", "mean"):
        integral_sum = (
            name == "sum" and col.sql_type.kind is not TypeKind.DOUBLE
        )

        def partial(rng):
            s, e = rng
            chunk = col.slice(s, e)
            chunk_codes = codes[s:e]
            counts = group_counts(chunk, chunk_codes, n_groups)
            if integral_sum:
                mask = chunk.validity()
                values = chunk.values[mask].astype(np.int64)
                sums, _present = _segmented_reduce(
                    values, chunk_codes[mask], n_groups, np.add
                )
            else:
                sums = group_sums(chunk, chunk_codes, n_groups)
            return counts, sums

        parts = pool.map_ordered(partial, ranges, label="partial_aggregate")
        counts = np.zeros(n_groups, dtype=np.int64)
        sums = np.zeros(
            n_groups, dtype=np.int64 if integral_sum else np.float64
        )
        for part_counts, part_sums in parts:  # fixed reduction order
            counts += part_counts
            sums += part_sums
        valid = counts > 0
        if name == "sum":
            return Column(
                sums, BIGINT if integral_sum else DOUBLE, valid
            )
        out = np.zeros(n_groups, dtype=np.float64)
        out[valid] = sums[valid] / counts[valid]
        return Column(out, DOUBLE, valid)

    # Extremes (min/max) and boolean folds (segmented ufunc reduce).
    if name in ("min", "bool_and", "every"):
        ufunc = np.minimum
    else:
        ufunc = np.maximum
    boolean = name in ("bool_and", "bool_or", "every")

    def partial(rng):
        s, e = rng
        chunk = col.slice(s, e)
        mask = chunk.validity()
        values = chunk.values[mask]
        if boolean:
            values = values.astype(np.int8)
        return _segmented_reduce(
            values, codes[s:e][mask], n_groups, ufunc
        )

    parts = pool.map_ordered(partial, ranges, label="partial_aggregate")
    merged, present = parts[0]
    merged = merged.copy()
    present = present.copy()
    for part_values, part_present in parts[1:]:
        both = present & part_present
        merged[both] = ufunc(merged[both], part_values[both])
        fresh = part_present & ~present
        merged[fresh] = part_values[fresh]
        present |= part_present
    if boolean:
        return Column(merged.astype(np.bool_), BOOLEAN, present)
    return Column(merged, col.sql_type, present)
