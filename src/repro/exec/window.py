"""The window operator.

Materialises its input, then per spec: partitions rows (factorize),
sorts within partitions by the window's ORDER BY (stable), computes the
function vectorised over partition segments, and scatters results back
to the original row order — window operators never reorder their
output.

Frame semantics (the SQL default):

* no ORDER BY — the frame is the whole partition (every row gets the
  partition aggregate);
* with ORDER BY — RANGE UNBOUNDED PRECEDING .. CURRENT ROW: running
  values where peer rows (ties on all sort keys) share the value of
  their last peer.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ExecutionError
from ..expr.compiler import EvalContext
from ..plan.logical import LogicalWindow, WindowSpec
from ..storage.column import Column, ColumnBatch
from ..types import BIGINT, DOUBLE, TypeKind
from .common import factorize
from .physical import ExecutionContext, PhysicalOperator
from .sort import _stable_key_sort


class WindowOp(PhysicalOperator):
    def __init__(
        self,
        node: LogicalWindow,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(node.output)
        self._node = node
        self._child = child
        self._ctx = ctx
        self._compiled = []
        for spec in node.specs:
            self._compiled.append(
                (
                    [ctx.compiler.compile(a) for a in spec.args],
                    [ctx.compiler.compile(p) for p in spec.partition_by],
                    [ctx.compiler.compile(k.expr) for k in spec.order_by],
                )
            )

    def describe(self) -> str:
        return f"Window({len(self._node.specs)} specs)"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        batch = self._child.execute_materialized(eval_ctx)
        self._ctx.checkpoint("window")
        columns = dict(batch.columns)
        n = len(batch)
        for spec, (arg_fns, part_fns, key_fns) in zip(
            self._node.specs, self._compiled
        ):
            columns[spec.slot] = self._evaluate_spec(
                spec, arg_fns, part_fns, key_fns, batch, eval_ctx, n
            )
        yield ColumnBatch(columns)

    # ------------------------------------------------------------------

    def _evaluate_spec(
        self, spec: WindowSpec, arg_fns, part_fns, key_fns, batch,
        eval_ctx, n,
    ) -> Column:
        if n == 0:
            return Column(
                np.zeros(0, dtype=spec.sql_type.numpy_dtype()),
                spec.sql_type,
            )
        if part_fns:
            part_cols = [fn(batch, eval_ctx) for fn in part_fns]
            codes, _count = factorize(part_cols)
        else:
            codes = np.zeros(n, dtype=np.int64)

        # Order: stable sort by the window keys, then stably by the
        # partition code, giving contiguous partitions in key order.
        order = np.arange(n, dtype=np.int64)
        for key, fn in zip(
            reversed(spec.order_by), reversed(key_fns)
        ):
            col = fn(batch, eval_ctx)
            order = order[_stable_key_sort(col.take(order), key)]
        order = order[np.argsort(codes[order], kind="stable")]
        sorted_codes = codes[order]
        segment_start = np.concatenate(
            ([True], sorted_codes[1:] != sorted_codes[:-1])
        )

        peer_start = segment_start.copy()
        if key_fns:
            for fn in key_fns:
                col = fn(batch, eval_ctx).take(order)
                values, validity = col.values, col.validity()
                if col.sql_type.kind is TypeKind.VARCHAR:
                    differs = np.ones(n, dtype=np.bool_)
                    for i in range(1, n):
                        differs[i] = (
                            values[i] != values[i - 1]
                            or validity[i] != validity[i - 1]
                        )
                else:
                    differs = np.concatenate(
                        (
                            [True],
                            (values[1:] != values[:-1])
                            | (validity[1:] != validity[:-1]),
                        )
                    )
                peer_start |= differs

        sorted_result = self._compute(
            spec, arg_fns, batch, eval_ctx, order, segment_start,
            peer_start,
        )
        # Scatter back to original row order.
        values = np.empty_like(sorted_result.values)
        values[order] = sorted_result.values
        valid = None
        if sorted_result.valid is not None:
            valid = np.empty_like(sorted_result.valid)
            valid[order] = sorted_result.valid
        return Column(values, spec.sql_type, valid)

    def _compute(
        self, spec, arg_fns, batch, eval_ctx, order, segment_start,
        peer_start,
    ) -> Column:
        n = len(order)
        name = spec.func_name.lower()
        position = _positions_within_segments(segment_start)

        if name == "row_number":
            return Column((position + 1).astype(np.int64), BIGINT)
        if name == "rank":
            # Rank = position of the peer group's first row + 1.
            first_of_peer = _broadcast_from_starts(peer_start, position)
            return Column((first_of_peer + 1).astype(np.int64), BIGINT)
        if name == "dense_rank":
            dense = _reset_segments(
                np.cumsum(peer_start.astype(np.int64)), segment_start
            )
            return Column(dense.astype(np.int64), BIGINT)
        if name in ("lag", "lead"):
            return self._lag_lead(
                spec, arg_fns, batch, eval_ctx, order, segment_start,
                name == "lead",
            )
        if name in ("count", "sum", "avg", "min", "max"):
            return self._windowed_aggregate(
                spec, arg_fns, batch, eval_ctx, order, segment_start,
                peer_start, name,
            )
        raise ExecutionError(f"unknown window function {name!r}")

    def _lag_lead(
        self, spec, arg_fns, batch, eval_ctx, order, segment_start,
        is_lead,
    ) -> Column:
        n = len(order)
        value_col = arg_fns[0](batch, eval_ctx).take(order)
        offset = 1
        if len(spec.args) >= 2:
            offset = _constant_int(spec.args[1], "lag/lead offset")
        default = None
        if len(spec.args) >= 3:
            default_col = arg_fns[2](batch, eval_ctx)
            default = default_col.value_at(0) if len(default_col) else None
        if offset < 0:
            raise ExecutionError("lag/lead offset must be >= 0")

        segment_ids = np.cumsum(segment_start) - 1
        indices = np.arange(n, dtype=np.int64)
        source = indices + offset if is_lead else indices - offset
        in_range = (source >= 0) & (source < n)
        safe = np.clip(source, 0, n - 1)
        same_segment = in_range & (
            segment_ids[safe] == segment_ids
        )
        gathered = value_col.take(safe)
        validity = gathered.validity() & same_segment
        values = gathered.values.copy()
        if default is not None:
            fill = ~same_segment
            filler = Column.constant(
                default, int(fill.sum()), spec.sql_type
            )
            values[fill] = filler.values
            validity = validity | fill
        return Column(values, spec.sql_type, validity)

    def _windowed_aggregate(
        self, spec, arg_fns, batch, eval_ctx, order, segment_start,
        peer_start, name,
    ) -> Column:
        n = len(order)
        has_order = bool(spec.order_by)
        if arg_fns:
            col = arg_fns[0](batch, eval_ctx).take(order)
            validity = col.validity()
            numeric = col.values.astype(np.float64, copy=False) \
                if name in ("sum", "avg") else col.values
        else:  # count(*)
            col = None
            validity = np.ones(n, dtype=np.bool_)
            numeric = None

        segment_ids = np.cumsum(segment_start) - 1
        n_segments = int(segment_ids[-1]) + 1 if n else 0

        if not has_order:
            # Whole-partition frame: reuse the grouped aggregate kernels.
            from ..expr import aggregates as agg

            kernel = agg.lookup("count_star" if col is None else name)
            grouped = kernel.grouped(col, segment_ids, n_segments)
            return grouped.take(segment_ids)

        # Running frame with peers sharing their group's last value.
        if name == "count":
            running = np.cumsum(validity.astype(np.int64))
            running = _reset_segments(running, segment_start)
            result_values = running.astype(np.int64)
            result_valid = None
        elif name in ("sum", "avg"):
            filled = np.where(validity, numeric, 0.0)
            csum = _reset_segments(np.cumsum(filled), segment_start)
            ccount = _reset_segments(
                np.cumsum(validity.astype(np.int64)), segment_start
            )
            if name == "sum":
                result_values = csum
                result_valid = ccount > 0
            else:
                safe = np.where(ccount == 0, 1, ccount)
                result_values = csum / safe
                result_valid = ccount > 0
            if (
                name == "sum"
                and spec.sql_type.kind is not TypeKind.DOUBLE
            ):
                result_values = result_values.astype(np.int64)
        else:  # min / max running
            result_values, result_valid = _running_extreme(
                col, segment_start, name == "min"
            )

        # Peers share the value at the END of their peer group.
        last_of_peer = _peer_group_last(peer_start)
        result_values = np.asarray(result_values)[last_of_peer]
        if result_valid is not None:
            result_valid = np.asarray(result_valid)[last_of_peer]
        if name == "sum" and spec.sql_type.kind is TypeKind.DOUBLE:
            result_values = result_values.astype(np.float64)
        return Column(
            np.asarray(
                result_values, dtype=spec.sql_type.numpy_dtype()
            ),
            spec.sql_type,
            result_valid,
        )


def _constant_int(expr, what: str) -> int:
    from ..expr.bound import BoundCast, BoundLiteral

    node = expr
    while isinstance(node, BoundCast):
        node = node.operand
    if isinstance(node, BoundLiteral) and isinstance(node.value, int):
        return node.value
    raise ExecutionError(f"{what} must be an integer literal")


def _positions_within_segments(segment_start: np.ndarray) -> np.ndarray:
    """0-based row index within each contiguous segment."""
    n = len(segment_start)
    indices = np.arange(n, dtype=np.int64)
    starts = np.where(segment_start, indices, 0)
    np.maximum.accumulate(starts, out=starts)
    return indices - starts


def _broadcast_from_starts(
    group_start: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Each row takes ``values`` from the first row of its group."""
    picked = np.where(group_start, values, 0)
    # Carry the group's first value forward; works because values at
    # start rows overwrite anything accumulated before.
    out = np.empty_like(values)
    current = 0
    starts = np.flatnonzero(group_start)
    bounds = np.append(starts, len(values))
    for i in range(len(starts)):
        out[bounds[i]:bounds[i + 1]] = picked[starts[i]]
    return out


def _peer_group_last(peer_start: np.ndarray) -> np.ndarray:
    """Index of the last row of each row's peer group."""
    n = len(peer_start)
    starts = np.flatnonzero(peer_start)
    ends = np.append(starts[1:], n) - 1
    out = np.empty(n, dtype=np.int64)
    for start, end in zip(starts, ends):
        out[start:end + 1] = end
    return out


def _reset_segments(
    cumulative: np.ndarray, segment_start: np.ndarray
) -> np.ndarray:
    """Turn a global cumulative array into per-segment cumulatives."""
    starts = np.flatnonzero(segment_start)
    offsets = np.zeros_like(cumulative)
    for i, start in enumerate(starts):
        if start == 0:
            continue
        end = starts[i + 1] if i + 1 < len(starts) else len(cumulative)
        offsets[start:end] = cumulative[start - 1]
    return cumulative - offsets


def _running_extreme(col, segment_start, is_min):
    """Per-segment running min/max skipping NULLs (segment loop with a
    vectorised accumulate inside)."""
    n = len(col)
    validity = col.validity()
    values = col.values
    out = values.copy()
    out_valid = np.zeros(n, dtype=np.bool_)
    starts = np.flatnonzero(segment_start)
    bounds = np.append(starts, n)
    op = np.fmin if is_min else np.fmax
    for i in range(len(starts)):
        lo, hi = bounds[i], bounds[i + 1]
        seg_values = values[lo:hi].astype(np.float64, copy=True)
        seg_valid = validity[lo:hi]
        seg_values[~seg_valid] = np.nan
        running = op.accumulate(seg_values)
        seen = np.maximum.accumulate(seg_valid.astype(np.int8)) > 0
        out_valid[lo:hi] = seen
        filled = np.where(np.isnan(running), 0.0, running)
        out[lo:hi] = filled.astype(out.dtype, copy=False)
    return out, out_valid
