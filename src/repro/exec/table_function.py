"""Execution bridge for analytics operators (paper section 6).

The physical node materialises every input subplan (analytics operators
are pipeline breakers), compiles the bound lambdas, and hands everything
to the operator implementation from the analytics registry. The result
comes back as plain named columns and is re-keyed to the node's output
slots.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ExecutionError
from ..expr.compiler import EvalContext
from ..plan.logical import LogicalTableFunction
from ..storage.column import ColumnBatch
from .physical import ExecutionContext, PhysicalOperator


class TableFunctionOp(PhysicalOperator):
    def __init__(
        self,
        node: LogicalTableFunction,
        inputs: list[PhysicalOperator],
        ctx: ExecutionContext,
    ):
        super().__init__(node.output)
        self._node = node
        self._inputs = inputs
        self._ctx = ctx
        if ctx.analytics is None:
            raise ExecutionError(
                f"no analytics registry for operator {node.name!r}"
            )
        self._descriptor = ctx.analytics.lookup(node.name)
        if self._descriptor is None:
            raise ExecutionError(
                f"unknown analytics operator {node.name!r}"
            )

    def describe(self) -> str:
        return f"TableFunction({self._node.name})"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        governor = self._ctx.governor
        input_batches = [
            op.execute_materialized(eval_ctx) for op in self._inputs
        ]
        reserved = sum(b.nbytes for b in input_batches)
        governor.reserve(reserved, "table_function_inputs")
        try:
            self._ctx.checkpoint(f"table_function:{self._node.name}")
            # Inputs are presented to the operator with plain column
            # names.
            named_inputs = []
            for op, plan in zip(self._inputs, self._node.inputs):
                batch = input_batches[len(named_inputs)]
                named_inputs.append(
                    ColumnBatch(
                        {
                            col.name: batch[col.slot]
                            for col in plan.output
                        }
                    )
                )
            result = self._descriptor.run(
                self._node, named_inputs, self._ctx, eval_ctx
            )
        finally:
            governor.release(reserved)
        names = result.names()
        if len(names) != len(self.output):
            raise ExecutionError(
                f"operator {self._node.name!r} returned {len(names)} "
                f"columns, expected {len(self.output)}"
            )
        yield ColumnBatch(
            {
                col.slot: result[name]
                for col, name in zip(self.output, names)
            }
        )
