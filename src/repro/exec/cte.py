"""Appending recursion: the WITH RECURSIVE operator.

SQL:1999 semantics (the paper's HyPer SQL baseline, sections 5.1/8.4.1):
the result is the union of every round; each round's step sees only the
*previous* round's rows; iteration stops at a fixpoint (the step produced
no new rows). With UNION (distinct) semantics, rows already seen anywhere
in the result do not recurse again.

The memory behaviour the paper criticises is explicit here: every round's
rows stay materialised, so the accumulated result grows to n*i tuples.
``ExecutionStats.peak_live_tuples`` records that growth for the
iterate-vs-CTE ablation benchmark.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterator

import numpy as np

from ..errors import IterationLimitError
from ..expr.compiler import EvalContext
from ..plan.logical import LogicalRecursiveCTE
from ..storage.column import Column, ColumnBatch
from .common import factorize
from .physical import ExecutionContext, PhysicalOperator, materialize


class RecursiveCTEOp(PhysicalOperator):
    def __init__(
        self,
        node: LogicalRecursiveCTE,
        init: PhysicalOperator,
        step: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(node.output)
        self._node = node
        self._init = init
        self._step = step
        self._ctx = ctx
        #: Rounds executed by the most recent run (EXPLAIN ANALYZE).
        self.last_iterations = 0

    def describe(self) -> str:
        return f"RecursiveCTE({self._node.key})"

    def _as_working(self, batch: ColumnBatch, slots: list[str]) -> ColumnBatch:
        """Re-key a round's rows to canonical working-table column names
        (positional), so the step's WorkingTableOp can re-alias them."""
        names = [name for name, _t in _working_layout(self._node)]
        return ColumnBatch(
            {name: batch[slot] for name, slot in zip(names, slots)}
        )

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        node = self._node
        ctx = self._ctx
        out_slots = [c.slot for c in node.output]

        init_batch = self._init.execute_materialized(eval_ctx)
        current = self._relabel(init_batch, self._node.init.output_slots())
        if not node.union_all:
            from .aggregate import distinct_rows

            current = distinct_rows(current)

        accumulated: list[ColumnBatch] = [current]
        seen_codes: set[int] | None = None
        total_rows = len(current)
        ctx.stats.observe_live_tuples(total_rows)
        governor = ctx.governor
        # Appending semantics: every round stays live, so reservations
        # accumulate (n*i growth is exactly what a memory budget caps).
        reserved = governor.reserve(current.nbytes, "recursive_cte_init")

        tracer = ctx.tracer
        iterations = 0
        max_iterations = min(node.max_iterations, ctx.max_iterations)
        try:
            while len(current) > 0:
                ctx.checkpoint("recursive_cte_round")
                if iterations >= max_iterations:
                    raise IterationLimitError(
                        f"recursive CTE {node.key!r} exceeded "
                        f"{max_iterations} iterations"
                    )
                iterations += 1
                # Incremented per round (not once at the end) so the count
                # survives an iteration-limit abort.
                ctx.stats.iterations += 1
                ctx.working_tables[node.key] = self._as_working(
                    current, out_slots
                )
                round_span = (
                    tracer.span("iteration", round=iterations)
                    if tracer is not None
                    else nullcontext()
                )
                try:
                    with round_span:
                        step_batch = self._step.execute_materialized(
                            eval_ctx
                        )
                finally:
                    ctx.working_tables.pop(node.key, None)
                produced = self._relabel(
                    step_batch, self._node.step.output_slots()
                )
                if not node.union_all:
                    produced = self._drop_seen(accumulated, produced)
                if len(produced) == 0:
                    break
                accumulated.append(produced)
                total_rows += len(produced)
                # Appending semantics: every prior round stays live.
                ctx.stats.observe_live_tuples(total_rows)
                reserved += governor.reserve(
                    produced.nbytes, "recursive_cte_round"
                )
                current = produced
        finally:
            governor.release(reserved)
        self.last_iterations = iterations

        yield materialize(accumulated, node.output)

    def _relabel(
        self, batch: ColumnBatch, source_slots: list[str]
    ) -> ColumnBatch:
        return ColumnBatch(
            {
                out.slot: batch[src]
                for out, src in zip(self.output, source_slots)
            }
        )

    def _drop_seen(
        self, accumulated: list[ColumnBatch], produced: ColumnBatch
    ) -> ColumnBatch:
        """UNION-distinct recursion: drop rows equal to any already-seen
        row, and deduplicate the round itself."""
        from .aggregate import distinct_rows

        produced = distinct_rows(produced)
        if len(produced) == 0:
            return produced
        slots = [c.slot for c in self.output]
        prior = [b for b in accumulated if len(b) > 0]
        if not prior:
            return produced
        n_prior = sum(len(b) for b in prior)
        stacked = [
            Column.concat(
                [b[slot] for b in prior] + [produced[slot]]
            )
            for slot in slots
        ]
        codes, n_groups = factorize(stacked)
        seen = np.zeros(n_groups, dtype=np.bool_)
        seen[codes[:n_prior]] = True
        fresh = ~seen[codes[n_prior:]]
        return produced.filter(fresh)


def _working_layout(node: LogicalRecursiveCTE) -> list[tuple[str, object]]:
    return [(c.name, c.sql_type) for c in node.output]
