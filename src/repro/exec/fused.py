"""Fused Scan→Filter→Project pipelines.

One program — a bottom-up list of compiled steps — replaces the serial
FilterOp/ProjectOp operator chain over a base-table scan, so a morsel
runs predicate + projection in a single pass without crossing operator
boundaries. The same program representation drives the morsel tasks of
:class:`repro.exec.parallel.ParallelPipelineOp`; this module is the
shared home so both executors stay behaviourally identical.

Two optimisations ride on the program form:

* **Column pruning at filter boundaries**: after a filter's mask is
  evaluated, only the columns later steps (or the final output) still
  reference are gathered — predicate-only columns are dropped *before*
  the fancy-index gather, which is where filter time goes.
* **Zone-map pruning**: morsel ranges provably empty under the leading
  filter predicates are never sliced at all
  (:class:`repro.storage.zonemap.ScanPruner`).

Filter steps evaluate **sequentially** (no mask merging): conjunct
evaluation order is observable through data-dependent errors
(``a <> 0 AND b / a > 1`` must not divide where ``a = 0``), so fusion
never reorders or combines predicate evaluations.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..plan import logical as lp
from ..storage.column import ColumnBatch
from .physical import ExecutionContext, PhysicalOperator


def build_pipeline_program(
    stages: list[lp.LogicalPlan],
    ctx: ExecutionContext,
) -> list[tuple]:
    """Compile a top-down Filter/Project stage chain into a bottom-up
    step program.

    Steps are ``("filter", mask_fn, keep_slots)`` — ``keep_slots`` is
    the ordered list of slots later steps still need (None = keep all) —
    or ``("project", out_cols, fns)``.
    """
    bottom_up = list(reversed(stages))
    # Slots needed *after* each step, computed by a backward pass. The
    # final step's consumers need exactly the chain's output slots.
    needed_after: list[Optional[list[str]]] = [None] * len(bottom_up)
    needed = [col.slot for col in stages[0].output] if stages else []
    for i in range(len(bottom_up) - 1, -1, -1):
        stage = bottom_up[i]
        needed_after[i] = list(needed)
        if isinstance(stage, lp.LogicalFilter):
            merged = list(needed)
            for slot in sorted(stage.predicate.referenced_slots()):
                if slot not in merged:
                    merged.append(slot)
            needed = merged
        else:
            refs: list[str] = []
            for expr in stage.exprs:
                for slot in sorted(expr.referenced_slots()):
                    if slot not in refs:
                        refs.append(slot)
            needed = refs
    program: list[tuple] = []
    for i, stage in enumerate(bottom_up):
        if isinstance(stage, lp.LogicalFilter):
            keep = needed_after[i]
            if not keep:
                # A batch with zero columns loses its row count (the
                # length is derived from the columns), so a chain whose
                # upper stages reference no slots at all must keep the
                # scan columns as row-count carriers.
                keep = None
            program.append(
                (
                    "filter",
                    ctx.compiler.compile_predicate(stage.predicate),
                    keep,
                )
            )
        else:
            program.append(
                (
                    "project",
                    list(stage.output),
                    [ctx.compiler.compile(e) for e in stage.exprs],
                )
            )
    return program


def run_program(
    program: list[tuple], batch: ColumnBatch, eval_ctx
) -> ColumnBatch:
    """Apply a pipeline program to one morsel batch."""
    for step in program:
        if step[0] == "filter":
            _tag, mask_fn, keep = step
            # Mask first (it may read predicate-only columns), then drop
            # those columns before the gather. The projection also runs
            # on already-empty batches so every morsel leaves this step
            # with an identical layout.
            mask = mask_fn(batch, eval_ctx) if len(batch) else None
            if keep is not None and len(keep) < len(batch.columns):
                batch = batch.project(keep)
            if mask is not None and not mask.all():
                batch = batch.filter(mask)
        else:
            _tag, out_cols, fns = step
            batch = ColumnBatch(
                {
                    col.slot: fn(batch, eval_ctx)
                    for col, fn in zip(out_cols, fns)
                }
            )
    return batch


def pipeline_pruner(
    scan: lp.LogicalScan, stages: list[lp.LogicalPlan]
):
    """A :class:`ScanPruner` over the leading filter stages (the
    filters applied before any projection changes the slot space), or
    None when those predicates admit no pruning."""
    from ..storage.zonemap import ScanPruner

    leading = []
    for stage in reversed(stages):
        if isinstance(stage, lp.LogicalFilter):
            leading.append(stage.predicate)
        else:
            break
    if not leading:
        return None
    pruner = ScanPruner(scan.output, leading)
    return pruner if pruner.active else None


def try_build_fused_pipeline(
    plan: lp.LogicalPlan, ctx: ExecutionContext
) -> Optional["FusedPipelineOp"]:
    """The serial analogue of ``try_build_parallel_pipeline``: fuse a
    Filter/Project chain rooted at a base-table scan into one operator.

    Only taken when the hot-path stack is enabled and the statement is
    not profiled — profiled plans keep the one-node-per-operator shape
    that ``explain_analyze`` reports."""
    if ctx.profile or not ctx.hot_path:
        return None
    stages: list[lp.LogicalPlan] = []
    node = plan
    while isinstance(node, (lp.LogicalFilter, lp.LogicalProject)):
        stages.append(node)
        node = node.child
    if not stages or not isinstance(node, lp.LogicalScan):
        return None
    return FusedPipelineOp(plan, stages, node, ctx)


class FusedPipelineOp(PhysicalOperator):
    """Serial fused Scan→Filter→Project pipeline with zone-map morsel
    skipping; bit-identical to the unfused operator chain."""

    def __init__(
        self,
        plan: lp.LogicalPlan,
        stages: list[lp.LogicalPlan],
        scan: lp.LogicalScan,
        ctx: ExecutionContext,
    ):
        super().__init__(list(plan.output))
        self._scan = scan
        self._ctx = ctx
        self._program = build_pipeline_program(stages, ctx)
        self._pruner = pipeline_pruner(scan, stages)

    def describe(self) -> str:
        return (
            f"FusedPipeline({self._scan.table_name}, "
            f"stages={len(self._program)})"
        )

    def execute(self, eval_ctx) -> Iterator[ColumnBatch]:
        from .parallel import morsel_ranges

        ctx = self._ctx
        data = ctx.read_table(self._scan.table_name)
        ctx.stats.rows_scanned += data.row_count
        if data.row_count == 0:
            yield self.empty_batch()
            return
        columns = {
            col.slot: data.column_by_name(col.name)
            for col in self._scan.output
        }
        ranges = morsel_ranges(data.row_count, ctx.morsel_rows)
        if self._pruner is not None:
            ranges, pruned = self._pruner.keep_ranges(
                data, ranges, eval_ctx.params
            )
            ctx.stats.morsels_pruned += pruned
        if not ranges:
            yield self.empty_batch()
            return
        for start, stop in ranges:
            ctx.checkpoint("fused_pipeline")
            batch = ColumnBatch(
                {
                    slot: col.slice(start, stop)
                    for slot, col in columns.items()
                }
            )
            yield run_program(self._program, batch, eval_ctx)
