"""Leaf operators: table scan, working-table reference, literal values."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..expr.compiler import EvalContext
from ..plan.logical import LogicalScan, LogicalValues, LogicalWorkingTableRef
from ..storage.column import Column, ColumnBatch
from ..types import INTEGER
from .physical import ExecutionContext, PhysicalOperator


class ScanOp(PhysicalOperator):
    """Morsel-wise scan of a base table at the statement's snapshot.

    Column pruning is applied here: only the slots the optimizer left in
    the node's output are materialised into batches.
    """

    def __init__(self, node: LogicalScan, ctx: ExecutionContext):
        super().__init__(node.output)
        self._node = node
        self._ctx = ctx
        self._pruner = None
        predicate = ctx.scan_prune.get(id(node))
        if predicate is not None and ctx.hot_path:
            from ..storage.zonemap import ScanPruner

            pruner = ScanPruner(node.output, [predicate])
            if pruner.active:
                self._pruner = pruner

    def describe(self) -> str:
        return f"Scan({self._node.table_name})"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        data = self._ctx.read_table(self._node.table_name)
        self._ctx.stats.rows_scanned += data.row_count
        columns = {
            col.slot: data.column_by_name(col.name)
            for col in self.output
        }
        if data.row_count == 0:
            yield self.empty_batch()
            return
        morsel = self._ctx.morsel_rows
        ranges = [
            (start, min(start + morsel, data.row_count))
            for start in range(0, data.row_count, morsel)
        ]
        if self._pruner is not None:
            ranges, pruned = self._pruner.keep_ranges(
                data, ranges, eval_ctx.params
            )
            self._ctx.stats.morsels_pruned += pruned
        if not ranges:
            yield self.empty_batch()
            return
        for start, stop in ranges:
            self._ctx.checkpoint("scan")
            yield ColumnBatch(
                {
                    slot: col.slice(start, stop)
                    for slot, col in columns.items()
                }
            )


class WorkingTableOp(PhysicalOperator):
    """Reads the current working relation of an enclosing ITERATE or
    recursive CTE; columns are matched positionally and re-keyed to this
    reference's slots."""

    def __init__(self, node: LogicalWorkingTableRef, ctx: ExecutionContext):
        super().__init__(node.output)
        self._node = node
        self._ctx = ctx

    def describe(self) -> str:
        return f"WorkingTable({self._node.key})"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        from ..errors import ExecutionError

        batch = self._ctx.working_tables.get(self._node.key)
        if batch is None:
            raise ExecutionError(
                f"working table {self._node.key!r} referenced outside its "
                "iteration"
            )
        names = batch.names()
        if len(names) != len(self.output):
            raise ExecutionError("working table arity mismatch")
        yield ColumnBatch(
            {
                col.slot: batch[name]
                for col, name in zip(self.output, names)
            }
        )


class ValuesOp(PhysicalOperator):
    """Materialises literal rows.

    Each cell is a bound expression evaluated against a one-row carrier
    batch, so constant function calls and uncorrelated subqueries are
    allowed in VALUES. A hidden carrier column keeps the row count honest
    when the output has zero columns (the FROM-less SELECT's single row).
    """

    CARRIER = "__rid__"

    def __init__(self, node: LogicalValues, ctx: ExecutionContext):
        super().__init__(node.output)
        self._node = node
        self._ctx = ctx
        self._cell_fns = [
            [ctx.compiler.compile(cell) for cell in row]
            for row in node.rows
        ]

    def describe(self) -> str:
        return f"Values({len(self._node.rows)} rows)"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        one_row = ColumnBatch(
            {self.CARRIER: Column(np.zeros(1, dtype=np.int32), INTEGER)}
        )
        n = len(self._node.rows)
        per_column: list[list[object]] = [
            [None] * n for _ in self.output
        ]
        for r, row_fns in enumerate(self._cell_fns):
            for c, fn in enumerate(row_fns):
                per_column[c][r] = fn(one_row, eval_ctx).value_at(0)
        columns = {
            col.slot: Column.from_values(values, col.sql_type)
            for col, values in zip(self.output, per_column)
        }
        columns[self.CARRIER] = Column(
            np.arange(n, dtype=np.int32), INTEGER
        )
        yield ColumnBatch(columns)
