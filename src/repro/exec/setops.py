"""Set operations: UNION [ALL], INTERSECT, EXCEPT."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ExecutionError
from ..expr.compiler import EvalContext
from ..plan.logical import LogicalSetOp
from ..storage.column import Column, ColumnBatch
from .aggregate import distinct_rows
from .common import factorize
from .physical import ExecutionContext, PhysicalOperator


class SetOpOp(PhysicalOperator):
    """Aligns both inputs positionally to the node's output slots, then
    applies bag/set semantics. INTERSECT/EXCEPT use SQL set semantics
    (distinct results); UNION ALL streams, the rest materialise."""

    def __init__(
        self,
        node: LogicalSetOp,
        left: PhysicalOperator,
        right: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(node.output)
        self._node = node
        self._left = left
        self._right = right
        self._ctx = ctx

    def describe(self) -> str:
        return f"SetOp({self._node.op})"

    def _relabel(
        self, batch: ColumnBatch, source_slots: list[str]
    ) -> ColumnBatch:
        return ColumnBatch(
            {
                out.slot: batch[src]
                for out, src in zip(self.output, source_slots)
            }
        )

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        op = self._node.op
        self._ctx.checkpoint("setop")
        left_slots = self._node.left.output_slots()
        right_slots = self._node.right.output_slots()

        if op == "union_all":
            for batch in self._left.execute(eval_ctx):
                yield self._relabel(batch, left_slots)
            for batch in self._right.execute(eval_ctx):
                yield self._relabel(batch, right_slots)
            return

        left_batch = self._relabel(
            self._left.execute_materialized(eval_ctx), left_slots
        )
        right_batch = self._relabel(
            self._right.execute_materialized(eval_ctx), right_slots
        )

        if op == "union":
            slots = [c.slot for c in self.output]
            if len(left_batch) == 0:
                yield distinct_rows(right_batch)
                return
            if len(right_batch) == 0:
                yield distinct_rows(left_batch)
                return
            combined = ColumnBatch(
                {
                    slot: Column.concat(
                        [left_batch[slot], right_batch[slot]]
                    )
                    for slot in slots
                }
            )
            yield distinct_rows(combined)
            return

        if op not in ("intersect", "except"):
            raise ExecutionError(f"unknown set operation {op!r}")

        n_left = len(left_batch)
        slots = [c.slot for c in self.output]
        if n_left == 0:
            yield left_batch
            return
        if len(right_batch) == 0:
            if op == "except":
                yield distinct_rows(left_batch)
            else:
                yield self.empty_batch()
            return
        stacked = [
            Column.concat([left_batch[slot], right_batch[slot]])
            for slot in slots
        ]
        codes, n_groups = factorize(stacked)
        left_codes = codes[:n_left]
        right_present = np.zeros(n_groups, dtype=np.bool_)
        right_present[codes[n_left:]] = True
        member = right_present[left_codes]
        keep = member if op == "intersect" else ~member
        filtered = left_batch.filter(keep)
        yield distinct_rows(filtered)
