"""Streaming projection (expression evaluation)."""

from __future__ import annotations

from typing import Iterator

from ..expr.compiler import EvalContext
from ..plan.logical import LogicalProject
from ..storage.column import ColumnBatch
from .physical import ExecutionContext, PhysicalOperator


class ProjectOp(PhysicalOperator):
    """Evaluates the node's compiled expressions per batch; the output
    batch carries exactly the projection's slots."""

    def __init__(
        self,
        node: LogicalProject,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(node.output)
        self._child = child
        self._ctx = ctx
        self._fns = [ctx.compiler.compile(e) for e in node.exprs]

    def describe(self) -> str:
        return f"Project({len(self._fns)} exprs)"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        for batch in self._child.execute(eval_ctx):
            self._ctx.checkpoint("project")
            yield ColumnBatch(
                {
                    col.slot: fn(batch, eval_ctx)
                    for col, fn in zip(self.output, self._fns)
                }
            )
