"""Streaming selection."""

from __future__ import annotations

from typing import Iterator

from ..expr.compiler import EvalContext
from ..plan.logical import LogicalFilter
from ..storage.column import ColumnBatch
from .physical import ExecutionContext, PhysicalOperator


class FilterOp(PhysicalOperator):
    """Applies a compiled predicate mask to each batch (unknown -> drop)."""

    def __init__(
        self,
        node: LogicalFilter,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(list(node.output))
        self._child = child
        self._ctx = ctx
        self._predicate = ctx.compiler.compile_predicate(node.predicate)

    def describe(self) -> str:
        return "Filter"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        for batch in self._child.execute(eval_ctx):
            self._ctx.checkpoint("filter")
            if len(batch) == 0:
                yield batch
                continue
            mask = self._predicate(batch, eval_ctx)
            if mask.all():
                yield batch
            else:
                yield batch.filter(mask)
