"""Hash aggregation and DISTINCT — pipeline breakers."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ExecutionError
from ..expr import aggregates as agg_registry
from ..expr.compiler import EvalContext
from ..plan.logical import LogicalAggregate, LogicalDistinct
from ..storage.column import Column, ColumnBatch
from .common import factorize, group_representatives
from .physical import ExecutionContext, PhysicalOperator


class HashAggregateOp(PhysicalOperator):
    """Materialises input, factorizes group keys, and runs each
    aggregate's grouped kernel once over the whole input — the vectorised
    form of thread-local partial aggregation plus a global merge."""

    def __init__(
        self,
        node: LogicalAggregate,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(node.output)
        self._node = node
        self._child = child
        self._ctx = ctx
        self._group_fns = [
            ctx.compiler.compile(e) for e in node.group_exprs
        ]
        self._agg_arg_fns = [
            ctx.compiler.compile(spec.arg) if spec.arg is not None else None
            for spec in node.aggregates
        ]
        self._kernels = []
        for spec in node.aggregates:
            func = agg_registry.lookup(spec.func_name)
            if func is None:
                raise ExecutionError(
                    f"unknown aggregate {spec.func_name!r}"
                )
            self._kernels.append(func)

    def describe(self) -> str:
        return (
            f"HashAggregate(keys={len(self._node.group_exprs)}, "
            f"aggs={len(self._node.aggregates)})"
        )

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        governor = self._ctx.governor
        batch = self._child.execute_materialized(eval_ctx)
        reserved = governor.reserve(batch.nbytes, "hash_aggregate")
        try:
            yield from self._aggregate(eval_ctx, batch)
        finally:
            governor.release(reserved)

    def _aggregate(
        self, eval_ctx: EvalContext, batch: ColumnBatch
    ) -> Iterator[ColumnBatch]:
        node = self._node
        n = len(batch)
        self._ctx.checkpoint("hash_aggregate")

        if node.group_exprs:
            key_cols = [fn(batch, eval_ctx) for fn in self._group_fns]
            codes, n_groups = factorize(key_cols)
            if n_groups == 0:
                yield self.empty_batch()
                return
        else:
            key_cols = []
            codes = np.zeros(n, dtype=np.int64)
            n_groups = 1  # global aggregation: always one output row

        columns: dict[str, Column] = {}
        if key_cols:
            reps = group_representatives(codes, n_groups)
            for slot, col in zip(node.group_slots, key_cols):
                columns[slot] = col.take(reps)

        for spec, arg_fn, kernel in zip(
            node.aggregates, self._agg_arg_fns, self._kernels
        ):
            arg_col = arg_fn(batch, eval_ctx) if arg_fn is not None else None
            use_codes = codes
            use_col = arg_col
            if spec.distinct:
                if arg_col is None:
                    raise ExecutionError("COUNT(DISTINCT *) is not valid")
                use_col, use_codes = _deduplicate(
                    arg_col, codes, n_groups
                )
            # Partial-aggregate/merge path: chunk boundaries and merge
            # order are worker-independent, so workers=1 (inline) and
            # workers=N produce bit-identical results — including
            # floating-point sums, which always fold in chunk order.
            result = None
            pool = self._ctx.pool
            if not spec.distinct and pool is not None:
                from .parallel import partial_grouped_aggregate

                result = partial_grouped_aggregate(
                    spec.func_name, use_col, use_codes, n_groups, pool
                )
            if result is None:
                result = kernel.grouped(use_col, use_codes, n_groups)
            columns[spec.slot] = result

        yield ColumnBatch(columns)


def _deduplicate(
    col: Column, codes: np.ndarray, n_groups: int
) -> tuple[Column, np.ndarray]:
    """Keep one row per (group, value) pair — DISTINCT aggregation input.
    NULLs are preserved (the kernels skip them anyway)."""
    value_codes, n_values = factorize([col])
    if n_values == 0:
        return col, codes
    combined = codes * np.int64(n_values) + value_codes
    _uniques, first_idx = np.unique(combined, return_index=True)
    keep = np.sort(first_idx)
    return col.take(keep), codes[keep]


class DistinctOp(PhysicalOperator):
    """SELECT DISTINCT: one representative row per distinct full row."""

    def __init__(
        self,
        node: LogicalDistinct,
        child: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(list(node.output))
        self._child = child
        self._ctx = ctx

    def describe(self) -> str:
        return "Distinct"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        batch = self._child.execute_materialized(eval_ctx)
        self._ctx.checkpoint("distinct")
        if len(batch) == 0:
            yield batch
            return
        yield distinct_rows(batch)


def distinct_rows(batch: ColumnBatch) -> ColumnBatch:
    """Deduplicate full rows of a batch, keeping first occurrences in
    their original order."""
    cols = [batch[name] for name in batch.names()]
    codes, n_groups = factorize(cols)
    if n_groups == 0:
        return batch
    _uniques, first_idx = np.unique(codes, return_index=True)
    keep = np.sort(first_idx)
    if len(keep) == len(batch):
        return batch
    return batch.take(keep)
