"""Vectorised physical execution engine.

Physical operators are generators of :class:`ColumnBatch` morsels built
from a logical plan by :mod:`repro.exec.planner` and driven pull-based.
Pipeline breakers (aggregation, sort, joins' build side, the iterative
operators, and all analytics operators) materialise; everything else
streams batch-at-a-time, the vectorised analogue of HyPer's data-centric
pipelines (paper section 3).
"""

from .physical import ExecutionContext, PhysicalOperator
from .planner import build_physical, execute_plan

__all__ = [
    "ExecutionContext",
    "PhysicalOperator",
    "build_physical",
    "execute_plan",
]
