"""The non-appending ITERATE operator (paper section 5.1).

Semantics of ``ITERATE((init), (step), (stop))``:

1. The working relation ``iterate`` is initialised from *init*.
2. Before each round, *stop* is evaluated against the current working
   relation; iteration ends when it returns at least one row whose first
   column is true (or at least one row, when the first column is not
   boolean — a row-existence stop predicate like Listing 1's).
3. Otherwise one round runs: *step* is evaluated against the working
   relation, and its result **replaces** it.
4. The final working relation is the operator's result.

Unlike the appending recursive CTE, only the current round (and
transiently the next one) is live: 2·n tuples instead of n·i. The
max-iteration guard aborts infinite loops, as the paper requires.

Each round starts with a governor checkpoint
(:meth:`repro.exec.physical.ExecutionContext.checkpoint`), so a long
ITERATE can be cancelled or timed out with latency bounded by one
round; the working relation's bytes are accounted against the
statement's memory budget, with the reservation *replaced* (not
accumulated) as rounds replace the relation.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterator

from ..errors import IterationLimitError
from ..expr.compiler import EvalContext
from ..plan.logical import LogicalIterate
from ..storage.column import ColumnBatch
from ..types import TypeKind
from .physical import ExecutionContext, PhysicalOperator


class IterateOp(PhysicalOperator):
    def __init__(
        self,
        node: LogicalIterate,
        init: PhysicalOperator,
        step: PhysicalOperator,
        stop: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(node.output)
        self._node = node
        self._init = init
        self._step = step
        self._stop = stop
        self._ctx = ctx
        #: Rounds executed by the most recent run (EXPLAIN ANALYZE).
        self.last_iterations = 0

    def describe(self) -> str:
        return "Iterate"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        node = self._node
        ctx = self._ctx
        governor = ctx.governor

        init_batch = self._init.execute_materialized(eval_ctx)
        working = self._as_working(
            init_batch, self._node.init.output_slots()
        )
        ctx.stats.observe_live_tuples(2 * len(working))
        reserved = governor.reserve(working.nbytes, "iterate_init")

        tracer = ctx.tracer
        iterations = 0
        max_iterations = min(node.max_iterations, ctx.max_iterations)
        try:
            while True:
                ctx.checkpoint("iterate_round")
                ctx.working_tables[node.key] = working
                try:
                    stop_batch = self._stop.execute_materialized(eval_ctx)
                    if self._stop_satisfied(stop_batch):
                        break
                    if iterations >= max_iterations:
                        raise IterationLimitError(
                            f"ITERATE exceeded {max_iterations} iterations "
                            "without satisfying its stop condition"
                        )
                    iterations += 1
                    # Incremented per round (not once at the end) so the
                    # count survives an iteration-limit abort.
                    ctx.stats.iterations += 1
                    round_span = (
                        tracer.span("iteration", round=iterations)
                        if tracer is not None
                        else nullcontext()
                    )
                    with round_span:
                        step_batch = self._step.execute_materialized(
                            eval_ctx
                        )
                finally:
                    ctx.working_tables.pop(node.key, None)
                next_working = self._as_working(
                    step_batch, self._node.step.output_slots()
                )
                # Non-appending: the new round replaces the old; at most
                # the two of them are live at once. The reservation is
                # replaced along with the rows.
                ctx.stats.observe_live_tuples(
                    len(working) + len(next_working)
                )
                next_reserved = governor.reserve(
                    next_working.nbytes, "iterate_round"
                )
                governor.release(reserved)
                reserved = next_reserved
                working = next_working
        finally:
            governor.release(reserved)
        self.last_iterations = iterations

        yield ColumnBatch(
            {
                col.slot: working[name]
                for col, name in zip(self.output, working.names())
            }
        )

    def _as_working(
        self, batch: ColumnBatch, source_slots: list[str]
    ) -> ColumnBatch:
        names = [c.name for c in self.output]
        return ColumnBatch(
            {
                name: batch[slot]
                for name, slot in zip(names, source_slots)
            }
        )

    @staticmethod
    def _stop_satisfied(stop_batch: ColumnBatch) -> bool:
        if len(stop_batch) == 0:
            return False
        names = stop_batch.names()
        if not names:
            return True
        first = stop_batch[names[0]]
        if first.sql_type.kind is TypeKind.BOOLEAN:
            mask = first.values.astype(bool, copy=False)
            validity = first.validity()
            return bool((mask & validity).any())
        return True
