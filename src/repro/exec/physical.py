"""Physical operator protocol and the execution context."""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional

from ..errors import ExecutionError
from ..expr.compiler import EvalContext, ExpressionCompiler
from ..governor import QueryContext
from ..plan.cache import cache_enabled
from ..plan.logical import LogicalPlan, PlanColumn
from ..storage.column import Column, ColumnBatch
from ..storage.table import DEFAULT_MORSEL_ROWS, TableData

#: Minimum base-table cardinality before the planner picks the parallel
#: pipeline for a Scan→Filter→Project chain. Below this, morsel dispatch
#: overhead exceeds the work; the serial operators stay.
DEFAULT_PARALLEL_THRESHOLD = 8_192


class ExecutionStats:
    """Counters collected during one statement's execution.

    ``peak_live_tuples`` records the largest number of tuples held live by
    iterative operators — the quantity the paper's section 5.1 memory
    argument is about (recursive CTEs grow to n*i, ITERATE stays at 2n).
    """

    def __init__(self) -> None:
        self.peak_live_tuples = 0
        self.iterations = 0
        self.rows_scanned = 0
        self.batches_produced = 0
        self.parallel_pipelines = 0
        self.morsels_dispatched = 0
        #: Morsels skipped via zone maps (serial scans and parallel
        #: pipelines alike); ``rows_scanned`` still counts the full
        #: table so scan cardinality semantics stay unchanged.
        self.morsels_pruned = 0

    def observe_live_tuples(self, count: int) -> None:
        if count > self.peak_live_tuples:
            self.peak_live_tuples = count


class OperatorStats:
    """Per-operator counters of one profiled execution (EXPLAIN ANALYZE).

    One node per physical operator; ``children`` mirrors the operator
    tree. ``elapsed_s`` is *inclusive* wall time (the operator plus
    everything below it); ``self_s`` subtracts the children. Operators
    that run repeatedly inside an iteration (ITERATE / recursive-CTE
    step and stop plans) accumulate over all rounds, with ``calls``
    recording how many times they were opened.
    """

    def __init__(self, label: str, children: list["OperatorStats"]):
        self.label = label
        self.children = children
        self.calls = 0
        self.batches_out = 0
        self.rows_out = 0
        self.elapsed_s = 0.0
        #: The optimizer's cardinality estimate for this operator's
        #: logical node (None when no estimator was available). Paired
        #: with the observed ``rows_out`` this is the estimation-error
        #: signal the history store persists per plan fingerprint.
        self.estimated_rows: Optional[float] = None
        #: Provenance of ``estimated_rows``: ``static`` (heuristic
        #: constants), ``stats`` (table statistics contributed), or
        #: ``feedback`` (observed cardinality override from history).
        self.estimate_source: Optional[str] = None
        #: Structural feedback key of the logical node this operator was
        #: built from (swap-invariant: class + sorted base tables +
        #: occurrence index). The history store records observations
        #: under it so re-optimization can match them back to plan nodes.
        self.node_key: Optional[str] = None

    @property
    def rows_in(self) -> int:
        return sum(child.rows_out for child in self.children)

    @property
    def batches_in(self) -> int:
        return sum(child.batches_out for child in self.children)

    @property
    def self_s(self) -> float:
        return max(
            0.0,
            self.elapsed_s - sum(c.elapsed_s for c in self.children),
        )

    def walk(self) -> Iterator["OperatorStats"]:
        """This node and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, prefix: str) -> Optional["OperatorStats"]:
        """The first node (pre-order) whose label starts with ``prefix``."""
        for node in self.walk():
            if node.label.startswith(prefix):
                return node
        return None

    @property
    def q_error(self) -> Optional[float]:
        """The q-error of the cardinality estimate: ``max(est/obs,
        obs/est)`` with both sides floored at one row (the standard
        symmetric metric — 1.0 is a perfect estimate). None when no
        estimate was recorded."""
        if self.estimated_rows is None:
            return None
        est = max(float(self.estimated_rows), 1.0)
        obs = max(float(self.rows_out), 1.0)
        return max(est / obs, obs / est)

    @property
    def operator_class(self) -> str:
        """The label without its argument decoration — ``Scan(t)`` and
        ``Scan(u)`` both report as class ``Scan`` (metrics grouping)."""
        return self.label.split("(", 1)[0]

    def top(self, n: int = 5) -> list["OperatorStats"]:
        """The ``n`` most expensive operators of this subtree by
        ``self_s`` (exclusive time), most expensive first."""
        return sorted(
            self.walk(), key=lambda node: node.self_s, reverse=True
        )[: max(n, 0)]

    def format(self, indent: int = 0) -> str:
        pad = "  " * indent
        estimate = ""
        if self.estimated_rows is not None:
            source = (
                f" src={self.estimate_source}"
                if self.estimate_source
                else ""
            )
            estimate = (
                f" est={self.estimated_rows:.0f} q={self.q_error:.2f}"
                f"{source}"
            )
        line = (
            f"{pad}{self.label}  "
            f"(rows_in={self.rows_in} rows_out={self.rows_out}"
            f"{estimate} "
            f"batches={self.batches_out} calls={self.calls} "
            f"time={self.elapsed_s * 1e3:.3f}ms "
            f"self={self.self_s * 1e3:.3f}ms)"
        )
        parts = [line]
        parts.extend(c.format(indent + 1) for c in self.children)
        return "\n".join(parts)

    def __repr__(self) -> str:
        return (
            f"OperatorStats({self.label!r}, rows_out={self.rows_out}, "
            f"time={self.elapsed_s:.6f}s)"
        )


class ExecutionContext:
    """Everything physical operators need at run time.

    ``read_table`` resolves a base-table name to the snapshot's
    :class:`TableData`; the transaction layer provides it so a whole
    statement sees one consistent snapshot.

    With ``profile`` enabled, :func:`repro.exec.planner.build_physical`
    wraps every operator it instantiates in a :class:`ProfiledOperator`;
    the resulting :class:`OperatorStats` trees accumulate in
    ``profile_roots`` (the main plan first, lazily-built subquery plans
    after it).
    """

    def __init__(
        self,
        read_table: Callable[[str], TableData],
        analytics=None,
        udfs=None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        max_iterations: int = 10_000,
        tracer=None,
        metrics=None,
        pool=None,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        governor: Optional[QueryContext] = None,
    ):
        self.read_table = read_table
        self.analytics = analytics
        self.udfs = udfs
        self.morsel_rows = morsel_rows
        self.max_iterations = max_iterations
        self.compiler = ExpressionCompiler(metrics=metrics)
        self.working_tables: dict[str, ColumnBatch] = {}
        self.stats = ExecutionStats()
        self.profile = False
        self.profile_roots: list[OperatorStats] = []
        self._profile_stack: list[list[OperatorStats]] = []
        self._physical_cache: dict[int, "PhysicalOperator"] = {}
        #: Optional :class:`repro.obs.trace.Tracer` — iterative operators
        #: open one ``iteration`` span per round when it is set.
        self.tracer = tracer
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` for
        #: operators that want to record directly (most metrics are
        #: flushed from ``stats`` by the session after the statement).
        self.metrics = metrics
        #: Operator-reported telemetry for the statement (convergence
        #: series of analytics operators); surfaced on
        #: :attr:`repro.api.result.QueryResult.telemetry`.
        self.telemetry: dict[str, object] = {}
        #: Optional :class:`repro.exec.parallel.WorkerPool` shared by
        #: the session; operators dispatch morsels through it. ``None``
        #: (or a serial pool) keeps every operator on the caller thread.
        self.pool = pool
        #: Minimum scanned cardinality for the planner to choose a
        #: parallel pipeline over the serial operator chain.
        self.parallel_threshold = parallel_threshold
        #: Statement parameter values for cached parameterized plans,
        #: keyed ``?0``, ``?1``, ... — merged into every EvalContext so
        #: BoundParam slots resolve anywhere in the plan (including
        #: inside subplans).
        self.query_params: dict[str, object] = {}
        #: Prune predicates for scans, keyed ``id(scan_node)`` — set by
        #: the planner when a filter sits directly on a scan so the scan
        #: can skip morsels via zone maps.
        self.scan_prune: dict[int, object] = {}
        #: Whether the hot-path stack (zone pruning, fused pipelines,
        #: CSR cache) applies. The session sets it from its plan-cache
        #: switch; standalone contexts follow REPRO_PLAN_CACHE.
        self.hot_path = cache_enabled()
        #: The statement's resource governor (deadline / cancel token /
        #: memory budget). Standalone contexts get an unbounded one so
        #: operator code can call :meth:`checkpoint` unconditionally.
        self.governor = governor if governor is not None else QueryContext()
        #: Optional :class:`repro.plan.cardinality.CardinalityEstimator`.
        #: When profiling, the planner stamps each operator's estimated
        #: cardinality onto its :class:`OperatorStats` node, giving
        #: estimated-vs-observed rows (and q-error) per operator in
        #: ``explain_analyze`` and the query history store.
        self.estimator = None
        #: Whether the planner may fuse adjacent Sort+Limit nodes into a
        #: :class:`repro.exec.sort.TopNSortOp`. The session sets it from
        #: its ``topn`` switch (REPRO_TOPN); standalone contexts fuse.
        self.topn = True
        #: Occurrence counters for structural feedback node keys, keyed
        #: by base key — deterministic for a given plan shape, so the
        #: keys recorded by one execution match the next build.
        self._node_key_counts: dict[str, int] = {}

    def next_node_key(self, base: str) -> str:
        """Allocate the next occurrence-disambiguated feedback key for
        ``base`` (e.g. ``Join[orders,people]`` -> ``...#0``, ``...#1``)."""
        n = self._node_key_counts.get(base, 0)
        self._node_key_counts[base] = n + 1
        return f"{base}#{n}"

    def checkpoint(self, where: str = "") -> None:
        """Cooperative governor checkpoint — called by operators at
        morsel / iteration-round boundaries. Raises the typed governor
        errors on cancellation, deadline, or injected fault."""
        self.governor.check(where)

    def new_eval_context(
        self, params: Optional[dict[str, object]] = None
    ) -> EvalContext:
        """An EvalContext wired to execute subquery plans in this
        context (shared uncorrelated-subquery cache)."""
        if self.query_params:
            merged = dict(self.query_params)
            if params:
                merged.update(params)
            params = merged
        ctx = EvalContext(execute_plan=self.run_subplan, params=params)
        return ctx

    def run_subplan(
        self, plan: LogicalPlan, params: dict[str, object]
    ) -> ColumnBatch:
        """Execute a (sub)plan to a single materialised batch. Used by
        scalar/IN/EXISTS subqueries inside expressions."""
        from .planner import build_physical

        op = self._physical_cache.get(id(plan))
        if op is None:
            op = build_physical(plan, self)
            self._physical_cache[id(plan)] = op
        eval_ctx = self.new_eval_context(params)
        eval_ctx.subquery_cache = {}  # params change => don't share cache
        batches = list(op.execute(eval_ctx))
        return materialize(batches, plan.output)


class PhysicalOperator:
    """Base class: a generator of column batches.

    ``output`` mirrors the logical node's output columns; batches produced
    are keyed by those slots.
    """

    def __init__(self, output: list[PlanColumn]):
        self.output = output

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        raise NotImplementedError

    def execute_materialized(self, eval_ctx: EvalContext) -> ColumnBatch:
        """Pull everything into one batch (pipeline-breaker helper)."""
        return materialize(list(self.execute(eval_ctx)), self.output)

    def empty_batch(self) -> ColumnBatch:
        return ColumnBatch.empty(
            {c.slot: c.sql_type for c in self.output}
        )

    def describe(self) -> str:
        """Short label for EXPLAIN ANALYZE output (operators override
        this to add table names, join kinds, key counts, ...)."""
        return type(self).__name__


class ProfiledOperator(PhysicalOperator):
    """Transparent wrapper that meters another operator's execution.

    Counts batches/rows produced and accumulates inclusive wall time
    (time spent inside ``next()`` on the wrapped generator — which
    includes the children, themselves wrapped, so a parent's elapsed
    time always bounds each child's).
    """

    def __init__(self, inner: PhysicalOperator, stats: OperatorStats):
        super().__init__(inner.output)
        self.inner = inner
        self.stats = stats

    def describe(self) -> str:
        return self.inner.describe()

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        stats = self.stats
        stats.calls += 1
        source = self.inner.execute(eval_ctx)
        while True:
            started = time.perf_counter()
            try:
                batch = next(source)
            except StopIteration:
                stats.elapsed_s += time.perf_counter() - started
                return
            stats.elapsed_s += time.perf_counter() - started
            stats.batches_out += 1
            stats.rows_out += len(batch)
            yield batch


def materialize(
    batches: list[ColumnBatch], output: list[PlanColumn]
) -> ColumnBatch:
    """Concatenate operator output into one batch with the plan layout."""
    non_empty = [b for b in batches if len(b) > 0]
    if not non_empty:
        return ColumnBatch.empty({c.slot: c.sql_type for c in output})
    if len(non_empty) == 1:
        batch = non_empty[0]
    else:
        batch = ColumnBatch(
            {
                c.slot: Column.concat([b[c.slot] for b in non_empty])
                for c in output
            }
        )
    missing = [c.slot for c in output if c.slot not in batch]
    if missing:
        raise ExecutionError(f"operator output missing slots {missing}")
    return batch.project([c.slot for c in output])
