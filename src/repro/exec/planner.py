"""Physical planning: logical plan -> physical operator tree."""

from __future__ import annotations

from ..errors import PlanError
from ..plan import logical as lp
from ..storage.column import ColumnBatch
from .aggregate import DistinctOp, HashAggregateOp
from .cte import RecursiveCTEOp
from .filter import FilterOp
from .fused import try_build_fused_pipeline
from .iterate import IterateOp
from .join import HashJoinOp, NestedLoopJoinOp
from .parallel import try_build_parallel_pipeline
from .physical import (
    ExecutionContext,
    OperatorStats,
    PhysicalOperator,
    ProfiledOperator,
    materialize,
)
from ..plan.feedback import feedback_key_base
from .project import ProjectOp
from .scan import ScanOp, ValuesOp, WorkingTableOp
from .setops import SetOpOp
from .sort import LimitOp, SortOp, TopNSortOp
from .table_function import TableFunctionOp
from .window import WindowOp


def build_physical(
    plan: lp.LogicalPlan, ctx: ExecutionContext
) -> PhysicalOperator:
    """Recursively instantiate physical operators for a logical plan.

    With ``ctx.profile`` set, every operator is wrapped in a
    :class:`ProfiledOperator` and its :class:`OperatorStats` node is
    linked to its parent's — the stats tree mirrors the operator tree.
    A plan built while no other profiled build is in flight becomes a
    new root in ``ctx.profile_roots`` (the main plan, then any subquery
    plans built lazily during execution).
    """
    if not ctx.profile:
        return _build_physical_node(plan, ctx)
    children: list[OperatorStats] = []
    ctx._profile_stack.append(children)
    try:
        op = _build_physical_node(plan, ctx)
    finally:
        ctx._profile_stack.pop()
    stats = OperatorStats(op.describe(), children)
    stats.node_key = ctx.next_node_key(feedback_key_base(plan))
    if ctx.estimator is not None:
        try:
            (
                stats.estimated_rows,
                stats.estimate_source,
            ) = ctx.estimator.estimate_with_source(plan)
        except Exception:  # noqa: BLE001 — estimates are best-effort
            stats.estimated_rows = None
            stats.estimate_source = None
    if ctx._profile_stack:
        ctx._profile_stack[-1].append(stats)
    else:
        ctx.profile_roots.append(stats)
    return ProfiledOperator(op, stats)


def _build_physical_node(
    plan: lp.LogicalPlan, ctx: ExecutionContext
) -> PhysicalOperator:
    if isinstance(plan, lp.LogicalScan):
        return ScanOp(plan, ctx)
    if isinstance(plan, lp.LogicalValues):
        return ValuesOp(plan, ctx)
    if isinstance(plan, lp.LogicalWorkingTableRef):
        return WorkingTableOp(plan, ctx)
    if isinstance(plan, (lp.LogicalFilter, lp.LogicalProject)):
        pipeline = try_build_parallel_pipeline(plan, ctx)
        if pipeline is not None:
            return pipeline
        fused = try_build_fused_pipeline(plan, ctx)
        if fused is not None:
            return fused
        if isinstance(plan, lp.LogicalFilter):
            # Filter directly on a scan: register the predicate so the
            # ScanOp can consult zone maps and skip provably-empty
            # morsels (the profiled / non-fused serial path).
            if isinstance(plan.child, lp.LogicalScan):
                ctx.scan_prune[id(plan.child)] = plan.predicate
            return FilterOp(plan, build_physical(plan.child, ctx), ctx)
        return ProjectOp(plan, build_physical(plan.child, ctx), ctx)
    if isinstance(plan, lp.LogicalJoin):
        left = build_physical(plan.left, ctx)
        right = build_physical(plan.right, ctx)
        if plan.equi_keys and plan.kind in ("inner", "left"):
            return HashJoinOp(plan, left, right, ctx)
        return NestedLoopJoinOp(plan, left, right, ctx)
    if isinstance(plan, lp.LogicalAggregate):
        return HashAggregateOp(plan, build_physical(plan.child, ctx), ctx)
    if isinstance(plan, lp.LogicalSort):
        return SortOp(plan, build_physical(plan.child, ctx), ctx)
    if isinstance(plan, lp.LogicalLimit):
        child = plan.child
        if (
            ctx.topn
            and plan.limit is not None
            and isinstance(child, lp.LogicalSort)
            and child.keys
        ):
            # Fuse ORDER BY + LIMIT into a bounded top-N sort: only the
            # offset+limit candidate rows are fully sorted.
            if ctx.metrics is not None:
                ctx.metrics.counter("sort_topn_used_total").inc()
            return TopNSortOp(
                child, plan, build_physical(child.child, ctx), ctx
            )
        return LimitOp(plan, build_physical(plan.child, ctx), ctx)
    if isinstance(plan, lp.LogicalWindow):
        return WindowOp(plan, build_physical(plan.child, ctx), ctx)
    if isinstance(plan, lp.LogicalDistinct):
        return DistinctOp(plan, build_physical(plan.child, ctx), ctx)
    if isinstance(plan, lp.LogicalSetOp):
        return SetOpOp(
            plan,
            build_physical(plan.left, ctx),
            build_physical(plan.right, ctx),
            ctx,
        )
    if isinstance(plan, lp.LogicalRecursiveCTE):
        return RecursiveCTEOp(
            plan,
            build_physical(plan.init, ctx),
            build_physical(plan.step, ctx),
            ctx,
        )
    if isinstance(plan, lp.LogicalIterate):
        return IterateOp(
            plan,
            build_physical(plan.init, ctx),
            build_physical(plan.step, ctx),
            build_physical(plan.stop, ctx),
            ctx,
        )
    if isinstance(plan, lp.LogicalTableFunction):
        inputs = [build_physical(child, ctx) for child in plan.inputs]
        return TableFunctionOp(plan, inputs, ctx)
    raise PlanError(
        f"no physical implementation for {type(plan).__name__}"
    )


def execute_plan(
    plan: lp.LogicalPlan, ctx: ExecutionContext
) -> ColumnBatch:
    """Build, run, and fully materialise a logical plan."""
    op = build_physical(plan, ctx)
    eval_ctx = ctx.new_eval_context()
    return materialize(list(op.execute(eval_ctx)), plan.output)
