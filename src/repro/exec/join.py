"""Join operators: vectorised hash join and nested-loop join.

The hash join materialises both sides, factorizes the key columns into
dense codes (the vectorised equivalent of building and probing a hash
table), and matches code ranges with ``searchsorted`` — no per-tuple
Python in the hot path. SQL semantics: NULL keys never match; LEFT joins
NULL-extend unmatched left rows.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..errors import ExecutionError
from ..expr.bound import BoundExpr
from ..expr.compiler import EvalContext
from ..plan.logical import LogicalJoin, PlanColumn
from ..storage.column import Column, ColumnBatch
from ..types import TypeKind
from .common import factorize
from .parallel import _parallel_safe, morsel_ranges
from .physical import ExecutionContext, PhysicalOperator

#: Build (right) sides at or below this row count take the raw
#: integer-key path: binary-searching a few thousand sorted raw keys
#: is far cheaper than jointly factorizing both sides, whose
#: ``np.unique`` sort of the large probe side dominates the join.
SMALL_BUILD_ROWS = 4096

_INT_KEY_KINDS = (TypeKind.INTEGER, TypeKind.BIGINT)


def _raw_small_build_keys(
    left_key_cols: list[Column],
    right_key_cols: list[Column],
    n_right: int,
) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Raw int64 key arrays for the small-build fast path, or None.

    Applies to single-column integer equi-keys when the build (right)
    side is small. Bit-identical to the factorized path: ``np.unique``
    assigns codes in value order, so sorting and range-matching raw
    values produces exactly the same pairs in exactly the same order —
    while skipping the joint factorization whose sort of the large
    probe side dominates small-build joins. NULL slots are excluded by
    the caller's validity masks, so sentinel backing values at invalid
    positions are never compared.
    """
    if len(left_key_cols) != 1 or n_right > SMALL_BUILD_ROWS:
        return None
    lcol, rcol = left_key_cols[0], right_key_cols[0]
    if (
        lcol.sql_type.kind not in _INT_KEY_KINDS
        or rcol.sql_type.kind not in _INT_KEY_KINDS
    ):
        return None
    lvals = np.asarray(lcol.values)
    rvals = np.asarray(rcol.values)
    if not (
        np.issubdtype(lvals.dtype, np.integer)
        and np.issubdtype(rvals.dtype, np.integer)
    ):
        return None
    return (
        lvals.astype(np.int64, copy=False),
        rvals.astype(np.int64, copy=False),
    )


def _probe_chunk(
    probe_rows: np.ndarray,
    left_codes: np.ndarray,
    sorted_codes: np.ndarray,
    right_rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Probe one chunk of left rows against the sorted build side and
    expand the matching ``[lo, hi)`` ranges into explicit pair lists."""
    probe_codes = left_codes[probe_rows]
    lo = np.searchsorted(sorted_codes, probe_codes, side="left")
    hi = np.searchsorted(sorted_codes, probe_codes, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    pair_left = np.repeat(probe_rows, counts)
    starts = np.repeat(lo, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    pair_right = right_rows[starts + within]
    return pair_left, pair_right


def _null_extended(
    batch: ColumnBatch,
    indices: np.ndarray,
    valid_rows: np.ndarray,
    columns: list[PlanColumn],
) -> dict[str, Column]:
    """Gather ``indices`` from ``batch``; rows where ``valid_rows`` is
    False become all-NULL (LEFT join padding)."""
    out: dict[str, Column] = {}
    safe = np.where(valid_rows, indices, 0)
    for col in columns:
        source = batch[col.slot]
        if len(source) == 0:
            out[col.slot] = Column.all_null(len(indices), col.sql_type)
            continue
        gathered = source.take(safe)
        validity = gathered.validity() & valid_rows
        out[col.slot] = Column(gathered.values, col.sql_type, validity)
    return out


class HashJoinOp(PhysicalOperator):
    """Equi-join via key factorization; supports inner and left joins
    plus a residual predicate on matched pairs."""

    def __init__(
        self,
        node: LogicalJoin,
        left: PhysicalOperator,
        right: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(node.output)
        if node.kind not in ("inner", "left"):
            raise ExecutionError(f"hash join cannot run kind {node.kind!r}")
        self._node = node
        self._left = left
        self._right = right
        self._ctx = ctx
        self._left_keys = [
            ctx.compiler.compile(lk) for lk, _rk in node.equi_keys
        ]
        self._right_keys = [
            ctx.compiler.compile(rk) for _lk, rk in node.equi_keys
        ]
        self._residual = (
            ctx.compiler.compile_predicate(node.residual)
            if node.residual is not None
            else None
        )
        # Key evaluation may run on worker threads only when no key
        # expression carries a subquery or UDF (shared plan cache /
        # arbitrary Python are not thread-safe).
        self._keys_parallel_safe = all(
            _parallel_safe(k)
            for pair in node.equi_keys
            for k in pair
        )

    def describe(self) -> str:
        return (
            f"HashJoin({self._node.kind}, "
            f"keys={len(self._node.equi_keys)})"
        )

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        governor = self._ctx.governor
        left_batch = self._left.execute_materialized(eval_ctx)
        governor.reserve(left_batch.nbytes, "hash_join_build")
        right_batch = self._right.execute_materialized(eval_ctx)
        governor.reserve(right_batch.nbytes, "hash_join_probe")
        reserved = left_batch.nbytes + right_batch.nbytes
        try:
            yield from self._join(eval_ctx, left_batch, right_batch)
        finally:
            governor.release(reserved)

    def _join(
        self,
        eval_ctx: EvalContext,
        left_batch: ColumnBatch,
        right_batch: ColumnBatch,
    ) -> Iterator[ColumnBatch]:
        n_left = len(left_batch)
        n_right = len(right_batch)
        is_left_join = self._node.kind == "left"
        self._ctx.checkpoint("hash_join")

        if n_left == 0:
            yield self.empty_batch()
            return
        if n_right == 0:
            if is_left_join:
                yield self._pad_unmatched(left_batch, right_batch)
            else:
                yield self.empty_batch()
            return

        # Evaluate key expressions on both sides, then factorize the
        # stacked columns so codes are comparable across sides. The two
        # sides are independent, so a parallel pool evaluates them as
        # two build tasks.
        pool = self._ctx.pool
        parallel = (
            pool is not None
            and pool.is_parallel
            and self._keys_parallel_safe
        )
        if parallel and self._left_keys:
            left_key_cols, right_key_cols = pool.map_ordered(
                lambda side: [fn(side[1], eval_ctx) for fn in side[0]],
                [
                    (self._left_keys, left_batch),
                    (self._right_keys, right_batch),
                ],
            )
        else:
            left_key_cols = [
                fn(left_batch, eval_ctx) for fn in self._left_keys
            ]
            right_key_cols = [
                fn(right_batch, eval_ctx) for fn in self._right_keys
            ]
        raw_keys = _raw_small_build_keys(
            left_key_cols, right_key_cols, n_right
        )
        if raw_keys is not None:
            left_codes, right_codes = raw_keys
        else:
            stacked = [
                Column.concat([lc, rc])
                for lc, rc in zip(left_key_cols, right_key_cols)
            ]
            codes, _count = factorize(stacked)
            left_codes = codes[:n_left].copy()
            right_codes = codes[n_left:].copy()

        # NULL keys never match.
        left_null = np.zeros(n_left, dtype=np.bool_)
        for col in left_key_cols:
            left_null |= ~col.validity()
        right_null = np.zeros(n_right, dtype=np.bool_)
        for col in right_key_cols:
            right_null |= ~col.validity()

        usable_right = ~right_null
        order = np.argsort(right_codes[usable_right], kind="stable")
        right_rows = np.flatnonzero(usable_right)[order]
        sorted_codes = right_codes[right_rows]

        probe_rows = np.flatnonzero(~left_null)
        if parallel and 0 < len(probe_rows) \
                and len(probe_rows) >= self._ctx.parallel_threshold:
            # Probe in parallel over fixed probe-row chunks. Each
            # chunk's pair lists are integer gathers — exact slices of
            # what the whole-array probe computes — so concatenating in
            # chunk order reproduces the serial output bit for bit.
            ranges = morsel_ranges(
                len(probe_rows), self._ctx.morsel_rows
            )
            chunks = pool.map_ordered(
                lambda rng: _probe_chunk(
                    probe_rows[rng[0]:rng[1]],
                    left_codes, sorted_codes, right_rows,
                ),
                ranges,
            )
            pair_left = np.concatenate([c[0] for c in chunks])
            pair_right = np.concatenate([c[1] for c in chunks])
        else:
            pair_left, pair_right = _probe_chunk(
                probe_rows, left_codes, sorted_codes, right_rows
            )

        if self._residual is not None and len(pair_left) > 0:
            pair_batch = self._pair_batch(
                left_batch, right_batch, pair_left, pair_right
            )
            keep = self._residual(pair_batch, eval_ctx)
            pair_left = pair_left[keep]
            pair_right = pair_right[keep]

        if is_left_join:
            matched = np.zeros(n_left, dtype=np.bool_)
            matched[pair_left] = True
            unmatched = np.flatnonzero(~matched)
            if len(unmatched):
                pair_left = np.concatenate([pair_left, unmatched])
                pad = np.full(len(unmatched), -1, dtype=np.int64)
                pair_right = np.concatenate([pair_right, pad])

        if len(pair_left) == 0:
            yield self.empty_batch()
            return
        valid_right = pair_right >= 0
        columns = {}
        taken_left = left_batch.take(pair_left)
        for col in self._node.left.output:
            columns[col.slot] = taken_left[col.slot]
        columns.update(
            _null_extended(
                right_batch, pair_right, valid_right,
                self._node.right.output,
            )
        )
        yield ColumnBatch(columns)

    def _pair_batch(
        self,
        left_batch: ColumnBatch,
        right_batch: ColumnBatch,
        pair_left: np.ndarray,
        pair_right: np.ndarray,
    ) -> ColumnBatch:
        columns = {}
        taken_left = left_batch.take(pair_left)
        taken_right = right_batch.take(pair_right)
        for col in self._node.left.output:
            columns[col.slot] = taken_left[col.slot]
        for col in self._node.right.output:
            columns[col.slot] = taken_right[col.slot]
        return ColumnBatch(columns)

    def _pad_unmatched(
        self, left_batch: ColumnBatch, right_batch: ColumnBatch
    ) -> ColumnBatch:
        columns = dict(left_batch.columns)
        for col in self._node.right.output:
            columns[col.slot] = Column.all_null(
                len(left_batch), col.sql_type
            )
        return ColumnBatch(columns)


class NestedLoopJoinOp(PhysicalOperator):
    """Fallback join: cross product (in chunks) with an optional
    predicate. Handles cross joins and non-equi inner/left joins."""

    #: Target number of PAIRS per chunk; the per-chunk left-row count
    #: adapts to the right side's size so small right inputs (e.g. a
    #: centers relation) don't degrade into thousands of tiny batches.
    TARGET_PAIRS = 262_144
    MIN_CHUNK = 1_024

    def __init__(
        self,
        node: LogicalJoin,
        left: PhysicalOperator,
        right: PhysicalOperator,
        ctx: ExecutionContext,
    ):
        super().__init__(node.output)
        self._node = node
        self._left = left
        self._right = right
        self._ctx = ctx
        predicate: Optional[BoundExpr] = node.residual
        self._predicate = (
            ctx.compiler.compile_predicate(predicate)
            if predicate is not None
            else None
        )

    def describe(self) -> str:
        return f"NestedLoopJoin({self._node.kind})"

    def execute(self, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        left_batch = self._left.execute_materialized(eval_ctx)
        right_batch = self._right.execute_materialized(eval_ctx)
        n_left = len(left_batch)
        n_right = len(right_batch)
        is_left_join = self._node.kind == "left"

        if n_left == 0 or (n_right == 0 and not is_left_join):
            yield self.empty_batch()
            return

        chunk_rows = max(
            self.MIN_CHUNK, self.TARGET_PAIRS // max(n_right, 1)
        )
        produced_any = False
        for start in range(0, n_left, chunk_rows):
            self._ctx.checkpoint("nested_loop_chunk")
            stop = min(start + chunk_rows, n_left)
            chunk = stop - start
            if n_right == 0:
                pair_left = np.zeros(0, dtype=np.int64)
                pair_right = np.zeros(0, dtype=np.int64)
            else:
                pair_left = np.repeat(
                    np.arange(start, stop, dtype=np.int64), n_right
                )
                pair_right = np.tile(
                    np.arange(n_right, dtype=np.int64), chunk
                )
            if self._predicate is not None and len(pair_left):
                pair_batch = self._assemble(
                    left_batch, right_batch, pair_left, pair_right,
                    np.ones(len(pair_right), dtype=np.bool_),
                )
                keep = self._predicate(pair_batch, eval_ctx)
                pair_left = pair_left[keep]
                pair_right = pair_right[keep]
            if is_left_join:
                matched = np.zeros(chunk, dtype=np.bool_)
                matched[pair_left - start] = True
                unmatched = np.flatnonzero(~matched) + start
                if len(unmatched):
                    pair_left = np.concatenate([pair_left, unmatched])
                    pad = np.full(len(unmatched), -1, dtype=np.int64)
                    pair_right = np.concatenate([pair_right, pad])
            if len(pair_left) == 0:
                continue
            produced_any = True
            yield self._assemble(
                left_batch, right_batch, pair_left, pair_right,
                pair_right >= 0,
            )
        if not produced_any:
            yield self.empty_batch()

    def _assemble(
        self,
        left_batch: ColumnBatch,
        right_batch: ColumnBatch,
        pair_left: np.ndarray,
        pair_right: np.ndarray,
        valid_right: np.ndarray,
    ) -> ColumnBatch:
        columns = {}
        taken_left = left_batch.take(pair_left)
        for col in self._node.left.output:
            columns[col.slot] = taken_left[col.slot]
        columns.update(
            _null_extended(
                right_batch, pair_right, valid_right,
                self._node.right.output,
            )
        )
        return ColumnBatch(columns)
