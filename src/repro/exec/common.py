"""Shared vectorised kernels: key factorization and row materialisation.

Factorization maps rows of one or more key columns to dense integer
codes in ``[0, n_groups)``. It is the workhorse behind hash aggregation,
DISTINCT, set operations, and hash joins — the engine's equivalent of
building a hash table, done with numpy sorting primitives instead of a
per-tuple hash loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..storage.column import Column, ColumnBatch
from ..types import TypeKind


def factorize_column(col: Column) -> tuple[np.ndarray, int]:
    """Dense codes for one column; NULLs form their own group (SQL
    GROUP BY treats NULLs as equal). Returns (codes, n_codes)."""
    n = len(col)
    if n == 0:
        return np.zeros(0, dtype=np.int64), 0
    if col.sql_type.kind is TypeKind.VARCHAR:
        codes = np.zeros(n, dtype=np.int64)
        mapping: dict[object, int] = {}
        validity = col.validity()
        values = col.values
        null_code = -1
        for i in range(n):
            if not validity[i]:
                if null_code < 0:
                    null_code = len(mapping)
                    mapping["\0__null__"] = null_code
                codes[i] = null_code
            else:
                value = values[i]
                code = mapping.get(value)
                if code is None:
                    code = len(mapping)
                    mapping[value] = code
                codes[i] = code
        return codes, len(mapping)
    if col.valid is None:
        _uniques, codes = np.unique(col.values, return_inverse=True)
        return codes.astype(np.int64), len(_uniques)
    # Factorize only valid slots: backing values at NULL slots (NaN,
    # sentinels) must not mint codes of their own, or they'd surface
    # as phantom empty groups downstream.
    valid = col.valid
    codes = np.zeros(n, dtype=np.int64)
    _uniques, valid_codes = np.unique(
        col.values[valid], return_inverse=True
    )
    codes[valid] = valid_codes.astype(np.int64)
    count = len(_uniques)
    nulls = ~valid
    if nulls.any():
        codes[nulls] = count
        count += 1
    return codes, count


def factorize(columns: Sequence[Column]) -> tuple[np.ndarray, int]:
    """Dense row codes over several key columns (mixed-radix compose,
    re-compacted pairwise to avoid int64 overflow)."""
    if not columns:
        n = 0
        return np.zeros(n, dtype=np.int64), 0
    codes, count = factorize_column(columns[0])
    for col in columns[1:]:
        more_codes, more_count = factorize_column(col)
        if count == 0 or more_count == 0:
            return np.zeros(len(codes), dtype=np.int64), 0
        combined = codes * np.int64(more_count) + more_codes
        _uniques, codes = np.unique(combined, return_inverse=True)
        codes = codes.astype(np.int64)
        count = len(_uniques)
    return codes, count


def group_representatives(codes: np.ndarray, n_groups: int) -> np.ndarray:
    """Index of the first row of each group (for gathering key values)."""
    first = np.full(n_groups, -1, dtype=np.int64)
    # Reverse so earlier rows overwrite later ones.
    first[codes[::-1]] = np.arange(len(codes) - 1, -1, -1, dtype=np.int64)
    return first


def group_member_lists(
    codes: np.ndarray, n_groups: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rows of each group, grouped contiguously.

    Returns (order, offsets): ``order`` lists row indices sorted by group,
    ``offsets[g]:offsets[g+1]`` slices the members of group ``g``.
    """
    order = np.argsort(codes, kind="stable")
    counts = np.bincount(codes, minlength=n_groups)
    offsets = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return order, offsets


def concat_batches(
    batches: list[ColumnBatch], names: Sequence[str]
) -> ColumnBatch:
    """Concatenate batches (possibly none) into one, preserving layout."""
    non_empty = [b for b in batches if len(b) > 0]
    if not non_empty:
        if batches:
            return batches[0]
        raise ValueError("concat_batches needs a layout batch")
    if len(non_empty) == 1:
        return non_empty[0]
    return ColumnBatch(
        {
            name: Column.concat([b[name] for b in non_empty])
            for name in names
        }
    )
